package core

import (
	"math/rand"
	"testing"

	"tends/internal/diffusion"
	"tends/internal/graph"
	"tends/internal/metrics"
)

func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// simulateOn produces observations from a known network.
func simulateOn(t testing.TB, g *graph.Directed, mu, alpha float64, beta int, seed int64) *diffusion.StatusMatrix {
	t.Helper()
	rng := newTestRand(seed)
	ep := diffusion.NewEdgeProbs(g, mu, 0.05, rng)
	res, err := diffusion.Simulate(ep, diffusion.Config{Alpha: alpha, Beta: beta}, rng)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	return res.Statuses
}

func TestInferRecoversSymmetricChain(t *testing.T) {
	g := graph.Chain(12)
	g.Symmetrize()
	sm := simulateOn(t, g, 0.4, 0.1, 2000, 1)
	res, err := Infer(sm, Options{})
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	prf := metrics.Score(g, res.Graph)
	if prf.F < 0.8 {
		t.Fatalf("chain recovery F = %.3f (P=%.3f R=%.3f), want >= 0.8", prf.F, prf.Precision, prf.Recall)
	}
}

func TestInferRecoversSymmetricStar(t *testing.T) {
	g := graph.Star(8)
	g.Symmetrize()
	sm := simulateOn(t, g, 0.4, 0.125, 2000, 2)
	res, err := Infer(sm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	prf := metrics.Score(g, res.Graph)
	if prf.F < 0.8 {
		t.Fatalf("star recovery F = %.3f (P=%.3f R=%.3f), want >= 0.8", prf.F, prf.Precision, prf.Recall)
	}
}

func TestInferOnIndependentNoiseIsSparse(t *testing.T) {
	// No true edges: pure coin-flip columns. The inferred network should
	// be (nearly) empty thanks to the penalty and the pruning threshold.
	m := randomStatus(300, 15, 5)
	res, err := Infer(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.NumEdges() > 6 {
		t.Fatalf("inferred %d edges from pure noise, want near 0", res.Graph.NumEdges())
	}
}

func TestInferErrors(t *testing.T) {
	if _, err := Infer(diffusion.NewStatusMatrix(0, 5), Options{}); err == nil {
		t.Fatal("beta=0 should fail")
	}
	if _, err := Infer(diffusion.NewStatusMatrix(5, 0), Options{}); err == nil {
		t.Fatal("n=0 should fail")
	}
	if _, err := Infer(randomStatus(10, 3, 1), Options{MaxComboSize: -1}); err == nil {
		t.Fatal("negative MaxComboSize should fail")
	}
	if _, err := Infer(randomStatus(10, 3, 1), Options{ThresholdScale: -2}); err == nil {
		t.Fatal("negative ThresholdScale should fail")
	}
}

func TestInferDegenerateColumns(t *testing.T) {
	// Columns that are all-ones or all-zeros must not crash and must not
	// produce edges (their IMI with anything is 0).
	m := diffusion.NewStatusMatrix(50, 4)
	for p := 0; p < 50; p++ {
		m.Set(p, 0, true) // always infected
		// node 1 always uninfected
		m.Set(p, 2, p%2 == 0)
		m.Set(p, 3, p%2 == 0)
	}
	res, err := Infer(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Graph.Edges() {
		if e.From == 0 || e.To == 0 || e.From == 1 || e.To == 1 {
			t.Fatalf("degenerate column got an edge: %v", e)
		}
	}
}

func TestInferSingleNode(t *testing.T) {
	m := diffusion.NewStatusMatrix(10, 1)
	res, err := Infer(m, Options{})
	if err != nil {
		t.Fatalf("single-node inference failed: %v", err)
	}
	if res.Graph.NumEdges() != 0 {
		t.Fatal("single node cannot have edges")
	}
}

func TestInferThresholdOverrides(t *testing.T) {
	g := graph.Chain(10)
	g.Symmetrize()
	sm := simulateOn(t, g, 0.35, 0.1, 800, 3)

	auto, err := Infer(sm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if auto.AutoTau <= 0 {
		t.Fatalf("auto threshold = %v, want positive on structured data", auto.AutoTau)
	}
	scaled, err := Infer(sm, Options{ThresholdScale: 2})
	if err != nil {
		t.Fatal(err)
	}
	if scaled.Threshold <= auto.Threshold {
		t.Fatalf("scaled threshold %v not above auto %v", scaled.Threshold, auto.Threshold)
	}
	fixed := 0.99
	fres, err := Infer(sm, Options{FixedThreshold: &fixed})
	if err != nil {
		t.Fatal(err)
	}
	if fres.Threshold != 0.99 {
		t.Fatalf("fixed threshold not honored: %v", fres.Threshold)
	}
	if fres.Graph.NumEdges() != 0 {
		t.Fatalf("threshold 0.99 should prune everything, got %d edges", fres.Graph.NumEdges())
	}
}

func TestInferTraditionalMIStillWorks(t *testing.T) {
	g := graph.Chain(10)
	g.Symmetrize()
	sm := simulateOn(t, g, 0.4, 0.1, 1500, 4)
	res, err := Infer(sm, Options{TraditionalMI: true})
	if err != nil {
		t.Fatal(err)
	}
	prf := metrics.Score(g, res.Graph)
	if prf.F < 0.5 {
		t.Fatalf("traditional-MI mode F = %.3f, want something reasonable", prf.F)
	}
}

func TestInferMaxCandidatesCap(t *testing.T) {
	g := graph.Star(10)
	g.Symmetrize()
	sm := simulateOn(t, g, 0.4, 0.1, 1000, 5)
	res, err := Infer(sm, Options{MaxCandidates: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, parents := range res.Parents {
		if len(parents) > 2 {
			t.Fatalf("node %d has %d parents despite cap 2", i, len(parents))
		}
	}
}

func TestInferStaticVsAdaptiveGreedy(t *testing.T) {
	g := graph.Chain(10)
	g.Symmetrize()
	sm := simulateOn(t, g, 0.4, 0.1, 1500, 6)
	adaptive, err := Infer(sm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	static, err := Infer(sm, Options{StaticGreedy: true})
	if err != nil {
		t.Fatal(err)
	}
	fa := metrics.Score(g, adaptive.Graph).F
	fs := metrics.Score(g, static.Graph).F
	if fa < 0.6 {
		t.Fatalf("adaptive greedy F = %.3f", fa)
	}
	// The static variant trades precision for speed; it must still find a
	// substantial part of the structure.
	if fs < 0.3 {
		t.Fatalf("static greedy F = %.3f", fs)
	}
}

func TestInferScoreImprovesOverEmpty(t *testing.T) {
	g := graph.Chain(10)
	g.Symmetrize()
	sm := simulateOn(t, g, 0.4, 0.1, 1000, 7)
	res, err := Infer(sm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := NewScorer(sm)
	empty := make([][]int, sm.N())
	if res.Score < s.TotalScore(empty) {
		t.Fatalf("inferred topology scores %v below empty topology %v", res.Score, s.TotalScore(empty))
	}
}

func TestInferDeterministic(t *testing.T) {
	g := graph.Chain(10)
	g.Symmetrize()
	sm := simulateOn(t, g, 0.4, 0.1, 500, 8)
	a, err := Infer(sm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Infer(sm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Graph.Equal(b.Graph) {
		t.Fatal("Infer not deterministic on identical input")
	}
}

func TestBackwardPrune(t *testing.T) {
	// Node 0 drives node 1 perfectly; node 2 is a noisy copy of node 0.
	// With parents {0, 2}, dropping 2 must not hurt the score, so the
	// backward pass removes it.
	m := diffusion.NewStatusMatrix(400, 3)
	rng := newTestRand(31)
	for p := 0; p < 400; p++ {
		x := rng.Intn(2) == 0
		m.Set(p, 0, x)
		m.Set(p, 1, x)
		y := x
		if rng.Float64() < 0.3 {
			y = !y
		}
		m.Set(p, 2, y)
	}
	s := NewScorer(m)
	pruned := backwardPrune(s, 1, []int{0, 2})
	if len(pruned) != 1 || pruned[0] != 0 {
		t.Fatalf("backwardPrune = %v, want [0]", pruned)
	}
	// Pruning an already-minimal set is a no-op.
	if got := backwardPrune(s, 1, []int{0}); len(got) != 1 || got[0] != 0 {
		t.Fatalf("minimal set changed: %v", got)
	}
	if got := backwardPrune(s, 1, nil); len(got) != 0 {
		t.Fatalf("empty set changed: %v", got)
	}
}

func TestInferBackwardPruneOption(t *testing.T) {
	g := graph.Chain(12)
	g.Symmetrize()
	sm := simulateOn(t, g, 0.4, 0.1, 1000, 33)
	plain, err := Infer(sm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := Infer(sm, Options{BackwardPrune: true})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Graph.NumEdges() > plain.Graph.NumEdges() {
		t.Fatalf("backward prune added edges: %d -> %d", plain.Graph.NumEdges(), pruned.Graph.NumEdges())
	}
	if pruned.Score < plain.Score-1e-9 {
		t.Fatalf("backward prune lowered the total score: %v -> %v", plain.Score, pruned.Score)
	}
}

func TestInferDirectedChainFindsSkeleton(t *testing.T) {
	// On a truly directed chain, status-only data cannot orient edges; the
	// expected behaviour is recovering the skeleton (possibly both
	// directions). Recall of the true edges should stay high.
	g := graph.Chain(10)
	sm := simulateOn(t, g, 0.5, 0.1, 2000, 9)
	res, err := Infer(sm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	prf := metrics.Score(g, res.Graph)
	if prf.Recall < 0.6 {
		t.Fatalf("directed-chain recall = %.3f, want >= 0.6", prf.Recall)
	}
}
