package core

import (
	"context"
	"math"
	"math/bits"
	"runtime"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"tends/internal/diffusion"
	"tends/internal/kernel"
	"tends/internal/obs"
)

// SparseIMI is the sparse pairwise engine: instead of materializing the
// dense n(n−1)/2 triangle, it stores per-node CSR rows holding only the
// neighbors each node co-occurs with in at least one diffusion process,
// found through an inverted index over the bit-packed status columns
// (cascade → infected-node list). A pair that never co-occurs has n11 = 0,
// so its value depends only on the two marginal infected counts — a
// closed-form function of at most (β+1)² count-class pairs, kept as
// run-length "marginal runs" instead of per-pair storage.
//
// Every materialized or derived value goes through the same pairValue
// arithmetic as the dense engine, so SparseIMI.At is bit-identical to
// IMIMatrix.At for every pair, and the threshold selectors (which consume
// the shared valuePool form) return bit-identical τ. The pairwise stage
// drops from O(n²·β/64) to O(Σ_c |infected(c)|² + C²) with C count
// classes.
type SparseIMI struct {
	n, beta     int
	traditional bool
	mt          *miTable
	ones        []int32 // infected count per node

	// Symmetric CSR over co-occurring pairs: row i holds the ascending
	// neighbor list of node i with the pair values alongside.
	rowStart []int64
	nbr      []int32
	val      []float64

	// Count classes: distinct infected counts, ascending; classOf maps a
	// node to its class index.
	classVals  []int32
	classOf    []int32
	classSize  []int64
	classNodes [][]int32

	// Marginal runs: one (value, multiplicity) per unordered class pair
	// with at least one never-co-occurring node pair, in (a, b) class
	// order. marginalOf[a*C+b] (symmetric) is the run value, NaN when the
	// class pair has no zero pair; maxMarginal[a] is the largest marginal
	// value class a participates in (-Inf when none).
	marginalVals []float64
	marginalCnt  []int64
	maxMarginal  []float64

	pool    *valuePool
	coPairs int64
}

// ComputeSparseIMI builds the sparse pairwise engine from observations,
// using every CPU. It is the sparse counterpart of ComputeIMI.
func ComputeSparseIMI(sm *diffusion.StatusMatrix, traditional bool) *SparseIMI {
	s, _ := ComputeSparseIMIContext(context.Background(), sm, traditional, 0)
	return s
}

// ComputeSparseIMIContext is ComputeSparseIMI with an explicit worker count
// and cooperative cancellation (checked between node chunks). Like the
// dense engine, every row is computed independently from the same inputs,
// so the result is bit-identical for any worker count.
func ComputeSparseIMIContext(ctx context.Context, sm *diffusion.StatusMatrix, traditional bool, workers int) (*SparseIMI, error) {
	rec := obs.From(ctx)
	defer rec.StartSpan("core/imi").End()
	rowsC := rec.Counter("core/sparse/rows")
	pairsC := rec.Counter("core/sparse/pairs")
	skipC := rec.Counter("core/sparse/pairs_skipped")
	tilesC := rec.Counter("core/kernel/tiles")

	n, beta := sm.N(), sm.Beta()
	words, data := sm.Words(), sm.ColumnData()
	s := &SparseIMI{
		n: n, beta: beta, traditional: traditional,
		mt:       cachedMITable(beta),
		rowStart: make([]int64, n+1),
	}
	if n == 0 {
		s.pool = (&poolBuilder{}).finish()
		return s, ctx.Err()
	}

	// Infected counts and count classes.
	s.ones = make([]int32, n)
	classIdx := make([]int32, beta+1)
	for v := 0; v < n; v++ {
		s.ones[v] = int32(sm.CountInfected(v))
		classIdx[s.ones[v]] = 1
	}
	for c := 0; c <= beta; c++ {
		if classIdx[c] != 0 {
			classIdx[c] = int32(len(s.classVals) + 1)
			s.classVals = append(s.classVals, int32(c))
		}
	}
	nClasses := len(s.classVals)
	s.classOf = make([]int32, n)
	s.classSize = make([]int64, nClasses)
	for v := range s.ones {
		k := classIdx[s.ones[v]] - 1
		s.classOf[v] = k
		s.classSize[k]++
	}
	s.classNodes = make([][]int32, nClasses)
	for k := range s.classNodes {
		s.classNodes[k] = make([]int32, 0, s.classSize[k])
	}
	for v := range s.ones {
		k := s.classOf[v]
		s.classNodes[k] = append(s.classNodes[k], int32(v))
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Inverted index: cascade → infected-node list, one counting pass and
	// one fill pass over the bit columns. Filling in ascending node order
	// leaves every cascade list sorted.
	cascCnt := make([]int64, beta)
	forEachSetBit := func(v int, f func(p int)) {
		col := data[v*words : (v+1)*words]
		for w, word := range col {
			for word != 0 {
				f(w*64 + bits.TrailingZeros64(word))
				word &= word - 1
			}
		}
	}
	for v := 0; v < n; v++ {
		forEachSetBit(v, func(p int) { cascCnt[p]++ })
	}
	cascOff := make([]int64, beta+1)
	for p := 0; p < beta; p++ {
		cascOff[p+1] = cascOff[p] + cascCnt[p]
	}
	cascNodes := make([]int32, cascOff[beta])
	cursor := append([]int64(nil), cascOff[:beta]...)
	for v := 0; v < n; v++ {
		forEachSetBit(v, func(p int) {
			cascNodes[cursor[p]] = int32(v)
			cursor[p]++
		})
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	// parallelNodes runs body(v) for every node across the workers, claiming
	// fixed-size chunks off a shared counter; each worker gets its own
	// scratch. Bodies write disjoint per-node slots, so output is identical
	// for any worker count.
	const chunk = 256
	parallelNodes := func(body func(v int, scratch *sparseScratch)) {
		nChunks := (n + chunk - 1) / chunk
		run := func(claim func() int) {
			scratch := newSparseScratch(n)
			for ctx.Err() == nil {
				c := claim()
				if c >= nChunks {
					return
				}
				hi := (c + 1) * chunk
				if hi > n {
					hi = n
				}
				for v := c * chunk; v < hi; v++ {
					body(v, scratch)
				}
			}
		}
		if workers == 1 {
			next := 0
			run(func() int { next++; return next - 1 })
			return
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				run(func() int { return int(next.Add(1)) - 1 })
			}()
		}
		wg.Wait()
	}

	// Pass A: per-node co-occurrence degree, deduplicated with an epoch
	// stamp (the node id itself, unique per mark).
	deg := make([]int64, n)
	parallelNodes(func(v int, sc *sparseScratch) {
		cnt := int64(0)
		forEachSetBit(v, func(p int) {
			for _, u := range cascNodes[cascOff[p]:cascOff[p+1]] {
				if int(u) != v && sc.stamp[u] != int32(v) {
					sc.stamp[u] = int32(v)
					cnt++
				}
			}
		})
		deg[v] = cnt
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for v := 0; v < n; v++ {
		s.rowStart[v+1] = s.rowStart[v] + deg[v]
	}
	s.nbr = make([]int32, s.rowStart[n])
	s.val = make([]float64, s.rowStart[n])
	s.coPairs = s.rowStart[n] / 2

	// Pass B: fill each row (neighbors sorted ascending), compute n11 via
	// the gather kernel, derive values, and tally co-occurring class pairs
	// (i<j once) for the marginal-run bookkeeping. Stamps use n+v so they
	// can never collide with pass A marks on a reused scratch.
	tallies := make([]*classTally, workers)
	var tallySlot atomic.Int64
	parallelNodes(func(v int, sc *sparseScratch) {
		if sc.tally == nil {
			sc.tally = newClassTally(nClasses)
			tallies[int(tallySlot.Add(1))-1] = sc.tally
		}
		row := s.nbr[s.rowStart[v]:s.rowStart[v]]
		mark := int32(n + v)
		forEachSetBit(v, func(p int) {
			for _, u := range cascNodes[cascOff[p]:cascOff[p+1]] {
				if int(u) != v && sc.stamp[u] != mark {
					sc.stamp[u] = mark
					row = append(row, u)
				}
			}
		})
		slices.Sort(row)
		if cap(sc.n11) < len(row) {
			sc.n11 = make([]int, len(row)+64)
		}
		n11 := sc.n11[:len(row)]
		kernel.GatherAndCounts(n11, data, words, data[v*words:(v+1)*words], row)
		tilesC.Inc()
		ni := int(s.ones[v])
		base := s.rowStart[v]
		cv := s.classOf[v]
		for k, j := range row {
			s.val[base+int64(k)] = pairValue(s.mt, traditional, beta, n11[k], ni, int(s.ones[j]))
			if int(j) > v {
				sc.tally.add(cv, s.classOf[j])
			}
		}
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	tally := newClassTally(nClasses)
	for _, t := range tallies {
		if t != nil {
			tally.merge(t)
		}
	}

	// Marginal runs: for every unordered class pair, the pairs that never
	// co-occur share one closed-form value (n11 = 0). A class pair whose
	// counts sum past β cannot have a zero pair (pigeonhole), and indeed
	// its zero-pair multiplicity is always 0 here, so the n11 = 0 cell
	// arithmetic below never sees negative counts.
	s.maxMarginal = make([]float64, nClasses)
	for a := range s.maxMarginal {
		s.maxMarginal[a] = math.Inf(-1)
	}
	var b poolBuilder
	for v := 0; v < n; v++ {
		for k := s.rowStart[v]; k < s.rowStart[v+1]; k++ {
			if int(s.nbr[k]) > v {
				b.add(s.val[k], 1)
			}
		}
	}
	for a := 0; a < nClasses; a++ {
		for c := a; c < nClasses; c++ {
			var tot int64
			if a == c {
				tot = s.classSize[a] * (s.classSize[a] - 1) / 2
			} else {
				tot = s.classSize[a] * s.classSize[c]
			}
			zp := tot - tally.pairCount(a, c)
			if zp <= 0 {
				continue
			}
			mv := pairValue(s.mt, traditional, beta, 0, int(s.classVals[a]), int(s.classVals[c]))
			s.marginalVals = append(s.marginalVals, mv)
			s.marginalCnt = append(s.marginalCnt, zp)
			b.add(mv, zp)
			if mv > s.maxMarginal[a] {
				s.maxMarginal[a] = mv
			}
			if mv > s.maxMarginal[c] {
				s.maxMarginal[c] = mv
			}
		}
	}
	s.pool = b.finish()

	rowsC.Add(int64(n))
	pairsC.Add(s.coPairs)
	totalPairs := int64(n) * int64(n-1) / 2
	skipC.Add(totalPairs - s.coPairs)
	return s, nil
}

// sparseScratch is the per-worker state of the build passes.
type sparseScratch struct {
	stamp []int32
	n11   []int
	tally *classTally
}

func newSparseScratch(n int) *sparseScratch {
	st := &sparseScratch{stamp: make([]int32, n)}
	for i := range st.stamp {
		st.stamp[i] = -1
	}
	return st
}

// classTally counts co-occurring pairs per (unordered) class pair. Small
// class counts use a dense C×C table; degenerate inputs with huge C fall
// back to a map.
type classTally struct {
	c     int
	dense []int64
	m     map[uint64]int64
}

func newClassTally(c int) *classTally {
	t := &classTally{c: c}
	if c*c <= 1<<22 {
		t.dense = make([]int64, c*c)
	} else {
		t.m = make(map[uint64]int64)
	}
	return t
}

func (t *classTally) add(a, b int32) {
	if t.dense != nil {
		t.dense[int(a)*t.c+int(b)]++
		return
	}
	t.m[uint64(uint32(a))<<32|uint64(uint32(b))]++
}

func (t *classTally) merge(o *classTally) {
	if t.dense != nil {
		for i, v := range o.dense {
			t.dense[i] += v
		}
		return
	}
	for k, v := range o.m {
		t.m[k] += v
	}
}

// pairCount returns the co-occurring pair count for the unordered class
// pair (a, b), summing both tally orientations.
func (t *classTally) pairCount(a, b int) int64 {
	get := func(x, y int) int64 {
		if t.dense != nil {
			return t.dense[x*t.c+y]
		}
		return t.m[uint64(uint32(x))<<32|uint64(uint32(y))]
	}
	if a == b {
		return get(a, a)
	}
	return get(a, b) + get(b, a)
}

// N returns the number of nodes.
func (s *SparseIMI) N() int { return s.n }

// CoPairs returns the number of unordered node pairs that co-occur in at
// least one diffusion process — the pairs the engine materialized.
func (s *SparseIMI) CoPairs() int64 { return s.coPairs }

// TotalPairs returns n(n−1)/2.
func (s *SparseIMI) TotalPairs() int64 { return int64(s.n) * int64(s.n-1) / 2 }

// find locates j in row i's neighbor list.
func (s *SparseIMI) find(i int, j int32) (int64, bool) {
	lo, hi := s.rowStart[i], s.rowStart[i+1]
	row := s.nbr[lo:hi]
	k := sort.Search(len(row), func(t int) bool { return row[t] >= j })
	if k < len(row) && row[k] == j {
		return lo + int64(k), true
	}
	return 0, false
}

// At returns the pairwise value for (i, j), i != j — bit-identical to the
// dense IMIMatrix.At for the same observations.
func (s *SparseIMI) At(i, j int) float64 {
	if i == j {
		panic("core: IMI is undefined for a node with itself")
	}
	if k, ok := s.find(i, int32(j)); ok {
		return s.val[k]
	}
	// Never co-occurring: closed-form marginal-only value. n11 = 0 forces
	// ones[i]+ones[j] ≤ β (otherwise the pair would co-occur), so the cell
	// counts stay non-negative.
	return pairValue(s.mt, s.traditional, s.beta, 0, int(s.ones[i]), int(s.ones[j]))
}

// Candidates returns, for node i, every node j with value(i,j) > tau,
// ascending — the same contract as IMIMatrix.Candidates. The fast path
// (marginal values all ≤ tau, the normal IMI regime, where a
// never-co-occurring pair's value is provably ≤ 0 ≤ τ) touches only node
// i's CSR row; the general path additionally scans the count classes whose
// marginal value clears tau, which supports the traditional-MI ablation and
// negative fixed thresholds.
func (s *SparseIMI) Candidates(i int, tau float64) []int {
	lo, hi := s.rowStart[i], s.rowStart[i+1]
	count := 0
	for k := lo; k < hi; k++ {
		if s.val[k] > tau {
			count++
		}
	}
	ci := s.classOf[i]
	if s.maxMarginal[ci] <= tau {
		if count == 0 {
			return nil
		}
		out := make([]int, 0, count)
		for k := lo; k < hi; k++ {
			if s.val[k] > tau {
				out = append(out, int(s.nbr[k]))
			}
		}
		return out
	}
	// Some never-co-occurring class clears tau: collect the co-occurring
	// hits, then walk qualifying classes excluding self and row members.
	out := make([]int, 0, count)
	for k := lo; k < hi; k++ {
		if s.val[k] > tau {
			out = append(out, int(s.nbr[k]))
		}
	}
	for c := range s.classVals {
		if int(s.classVals[ci])+int(s.classVals[c]) > s.beta {
			continue // every such pair co-occurs; no marginal values exist
		}
		mv := pairValue(s.mt, s.traditional, s.beta, 0, int(s.classVals[ci]), int(s.classVals[c]))
		if mv <= tau {
			continue
		}
		for _, j := range s.classNodes[c] {
			if int(j) == i {
				continue
			}
			if _, ok := s.find(i, j); !ok {
				out = append(out, int(j))
			}
		}
	}
	sort.Ints(out)
	return out
}

// VisitPairValues streams every unordered pairwise value: co-occurring
// pairs individually and never-co-occurring pairs as class-pair runs with
// their multiplicities.
func (s *SparseIMI) VisitPairValues(visit func(v float64, count int64)) {
	for v := 0; v < s.n; v++ {
		for k := s.rowStart[v]; k < s.rowStart[v+1]; k++ {
			if int(s.nbr[k]) > v {
				visit(s.val[k], 1)
			}
		}
	}
	for r, mv := range s.marginalVals {
		visit(mv, s.marginalCnt[r])
	}
}

func (s *SparseIMI) valuePool() *valuePool { return s.pool }

// nodePool summarizes the values involving node i for the per-node
// threshold selector: row values individually plus one marginal run per
// count class, weighted by how many of that class's nodes never co-occur
// with i. Bit-identical to the dense nodePool (same value multiset).
func (s *SparseIMI) nodePool(i int) *valuePool {
	var b poolBuilder
	lo, hi := s.rowStart[i], s.rowStart[i+1]
	perClass := make([]int64, len(s.classVals))
	for k := lo; k < hi; k++ {
		b.add(s.val[k], 1)
		perClass[s.classOf[s.nbr[k]]]++
	}
	ci := s.classOf[i]
	for c := range s.classVals {
		rem := s.classSize[c] - perClass[c]
		if c == int(ci) {
			rem--
		}
		if rem <= 0 {
			continue
		}
		// rem > 0 implies a genuine never-co-occurring pair, which implies
		// ones[i]+classVals[c] ≤ β.
		b.add(pairValue(s.mt, s.traditional, s.beta, 0, int(s.ones[i]), int(s.classVals[c])), rem)
	}
	return b.finish()
}

// PairValues materializes the full dense triangle, row-major like
// IMIMatrix.PairValues. Compatibility/debug surface for small n: it
// allocates the O(n²) slice the sparse engine otherwise avoids.
func (s *SparseIMI) PairValues() []float64 {
	out := make([]float64, int64(s.n)*int64(s.n-1)/2)
	for i := 0; i < s.n; i++ {
		base := i * (2*s.n - i - 1) / 2
		k := s.rowStart[i]
		end := s.rowStart[i+1]
		for k < end && int(s.nbr[k]) <= i {
			k++
		}
		for j := i + 1; j < s.n; j++ {
			if k < end && int(s.nbr[k]) == j {
				out[base+j-i-1] = s.val[k]
				k++
			} else {
				out[base+j-i-1] = pairValue(s.mt, s.traditional, s.beta, 0, int(s.ones[i]), int(s.ones[j]))
			}
		}
	}
	return out
}
