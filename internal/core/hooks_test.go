package core

import (
	"errors"
	"sort"
	"strings"
	"sync"
	"testing"

	"tends/internal/graph"
)

// TestInferSkipNodes checks the supervisor's resume primitive: skipped nodes
// keep empty parent sets without being reported degraded, and every other
// node's answer is identical to a run without skips.
func TestInferSkipNodes(t *testing.T) {
	g := graph.Chain(12)
	g.Symmetrize()
	sm := simulateOn(t, g, 0.4, 0.1, 1000, 3)
	full, err := Infer(sm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	skip := map[int]bool{0: true, 5: true, 11: true, 99: true} // 99 out of range: ignored
	res, err := Infer(sm, Options{SkipNodes: skip})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Parents {
		if skip[i] {
			if len(res.Parents[i]) != 0 {
				t.Fatalf("skipped node %d has parents %v", i, res.Parents[i])
			}
			continue
		}
		if !equalParents(res.Parents[i], full.Parents[i]) {
			t.Fatalf("node %d: parents %v with skips, %v without", i, res.Parents[i], full.Parents[i])
		}
	}
	for _, d := range res.Degraded {
		if skip[d.Node] {
			t.Fatalf("skipped node %d reported degraded (%v)", d.Node, d.Reason)
		}
	}
	if res.Threshold != full.Threshold {
		t.Fatalf("threshold changed under SkipNodes: %v vs %v", res.Threshold, full.Threshold)
	}
}

// TestInferOnSearchStart checks the hook fires exactly once with the selected
// threshold, and that its error aborts the inference.
func TestInferOnSearchStart(t *testing.T) {
	g := graph.Chain(10)
	g.Symmetrize()
	sm := simulateOn(t, g, 0.4, 0.1, 600, 4)
	var calls int
	var seen float64
	res, err := Infer(sm, Options{OnSearchStart: func(tau float64) error {
		calls++
		seen = tau
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("OnSearchStart called %d times, want 1", calls)
	}
	if seen != res.Threshold {
		t.Fatalf("OnSearchStart saw threshold %v, result has %v", seen, res.Threshold)
	}

	boom := errors.New("header write failed")
	_, err = Infer(sm, Options{OnSearchStart: func(float64) error { return boom }})
	if !errors.Is(err, boom) || !strings.Contains(err.Error(), "search start") {
		t.Fatalf("OnSearchStart error not propagated: %v", err)
	}
}

// TestInferOnNodeDone checks every searched node is reported exactly once
// with its final parents, at both serial and parallel worker counts.
func TestInferOnNodeDone(t *testing.T) {
	g := graph.Chain(12)
	g.Symmetrize()
	sm := simulateOn(t, g, 0.4, 0.1, 1000, 5)
	for _, workers := range []int{1, 4} {
		var mu sync.Mutex
		got := make(map[int][]int)
		res, err := Infer(sm, Options{
			Workers:   workers,
			SkipNodes: map[int]bool{3: true},
			OnNodeDone: func(node int, parents []int) error {
				mu.Lock()
				defer mu.Unlock()
				if _, dup := got[node]; dup {
					return errors.New("duplicate callback")
				}
				got[node] = append([]int(nil), parents...)
				return nil
			},
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var nodes []int
		for n := range got {
			nodes = append(nodes, n)
		}
		sort.Ints(nodes)
		if len(nodes) != sm.N()-1 {
			t.Fatalf("workers=%d: %d callbacks for %d searchable nodes (%v)", workers, len(nodes), sm.N()-1, nodes)
		}
		for n, ps := range got {
			if n == 3 {
				t.Fatalf("workers=%d: skipped node reached OnNodeDone", workers)
			}
			if !equalParents(ps, res.Parents[n]) {
				t.Fatalf("workers=%d node %d: callback saw %v, result has %v", workers, n, ps, res.Parents[n])
			}
		}
	}
}

// TestInferOnNodeDoneError checks the first callback error cancels the
// remaining search and fails the inference.
func TestInferOnNodeDoneError(t *testing.T) {
	g := graph.Chain(12)
	g.Symmetrize()
	sm := simulateOn(t, g, 0.4, 0.1, 600, 6)
	boom := errors.New("journal append failed")
	for _, workers := range []int{1, 4} {
		_, err := Infer(sm, Options{
			Workers:    workers,
			OnNodeDone: func(int, []int) error { return boom },
		})
		if !errors.Is(err, boom) || !strings.Contains(err.Error(), "node callback") {
			t.Fatalf("workers=%d: OnNodeDone error not propagated: %v", workers, err)
		}
	}
}

func equalParents(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
