package core

import (
	"context"
	"math"
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"tends/internal/diffusion"
	"tends/internal/obs"
	"tends/internal/stats"
)

// IMIMatrix holds the pairwise infection mutual information (Eq. 25) — or,
// in the traditional-MI ablation mode, plain mutual information — between
// every pair of nodes. Both measures are symmetric, so only the upper
// triangle is stored.
type IMIMatrix struct {
	n    int
	vals []float64 // upper triangle, row-major: (i,j) with i<j
}

func triIndex(n, i, j int) int {
	if i > j {
		i, j = j, i
	}
	// Row i starts after rows 0..i-1, which hold (n-1)+(n-2)+...+(n-i) entries.
	return i*(2*n-i-1)/2 + (j - i - 1)
}

// At returns the stored value for the pair (i, j), i != j.
func (m *IMIMatrix) At(i, j int) float64 {
	if i == j {
		panic("core: IMI is undefined for a node with itself")
	}
	return m.vals[triIndex(m.n, i, j)]
}

// N returns the number of nodes.
func (m *IMIMatrix) N() int { return m.n }

// PairValues returns every pairwise value once (each unordered pair).
func (m *IMIMatrix) PairValues() []float64 {
	out := make([]float64, len(m.vals))
	copy(out, m.vals)
	return out
}

// ComputeIMI builds the pairwise infection-MI matrix from observations. If
// traditional is true it computes plain mutual information instead, the
// ablation of Figs. 10–11. It uses every CPU; ComputeIMIWorkers takes an
// explicit worker count.
func ComputeIMI(sm *diffusion.StatusMatrix, traditional bool) *IMIMatrix {
	return ComputeIMIWorkers(sm, traditional, 0)
}

// ComputeIMIWorkers is ComputeIMI with an explicit concurrency knob,
// mirroring Options.Workers: 0 means GOMAXPROCS, 1 forces serial
// execution. Every (i, j) slot is computed independently from the same
// inputs, so the matrix is bit-identical for any worker count.
func ComputeIMIWorkers(sm *diffusion.StatusMatrix, traditional bool, workers int) *IMIMatrix {
	// Background context never cancels, so the error can be ignored.
	m, _ := ComputeIMIContext(context.Background(), sm, traditional, workers)
	return m
}

// ComputeIMIContext is ComputeIMIWorkers with cooperative cancellation: the
// O(n²) pairwise stage checks ctx between rows and abandons the computation
// — returning ctx's error and no matrix — once the context is done. It is
// the hook the experiment harness uses to impose per-cell deadlines on
// TENDS runs.
func ComputeIMIContext(ctx context.Context, sm *diffusion.StatusMatrix, traditional bool, workers int) (*IMIMatrix, error) {
	// Telemetry handles are resolved once up front; on a recorder-less
	// context they are nil and every update below is an allocation-free
	// no-op, so the pairwise hot loop pays nothing.
	rec := obs.From(ctx)
	defer rec.StartSpan("core/imi").End()
	rowsC := rec.Counter("core/imi/rows")
	pairsC := rec.Counter("core/imi/pairs")
	n := sm.N()
	m := &IMIMatrix{n: n, vals: make([]float64, n*(n-1)/2)}
	if n < 2 {
		return m, ctx.Err()
	}
	beta := sm.Beta()
	// Per-node infected counts, computed once up front: building each
	// pair's contingency table through JointCounts would rescan both full
	// columns per pair — O(n²) popcount passes — when only the n11 AND
	// count actually depends on the pair.
	ones := make([]int, n)
	for i := 0; i < n; i++ {
		ones[i] = sm.CountInfected(i)
	}
	mt := cachedMITable(beta)
	fillRow := func(i int) {
		ca := sm.Column(i)
		base := i * (2*n - i - 1) / 2
		ni := ones[i]
		for j := i + 1; j < n; j++ {
			cb := sm.Column(j)
			n11 := 0
			for w := range ca {
				n11 += bits.OnesCount64(ca[w] & cb[w])
			}
			nj := ones[j]
			c11 := mt.cell(n11, ni, nj)
			c00 := mt.cell(beta-ni-nj+n11, beta-ni, beta-nj)
			c10 := mt.cell(ni-n11, ni, beta-nj)
			c01 := mt.cell(nj-n11, beta-ni, nj)
			if traditional {
				m.vals[base+j-i-1] = c11 + c00 + c10 + c01
			} else {
				m.vals[base+j-i-1] = c11 + c00 - math.Abs(c10) - math.Abs(c01)
			}
		}
		rowsC.Inc()
		pairsC.Add(int64(n - 1 - i))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n-1 {
		workers = n - 1
	}
	if workers <= 1 {
		for i := 0; i < n-1; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			fillRow(i)
		}
		return m, nil
	}
	// Workers claim rows off a shared counter; rows shrink as i grows, so
	// dynamic claiming balances the triangular workload better than fixed
	// blocks. Each worker writes disjoint slots of m.vals.
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n-1 {
					return
				}
				fillRow(i)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

// twoMeansMaxIter bounds the modified K-means iterations of the threshold
// selectors (convergence is immediate in practice; see stats.TwoMeansThreshold).
const twoMeansMaxIter = 100

// SelectThreshold runs the modified K-means of Section IV-B over the
// non-negative pairwise values and returns the pruning threshold τ.
func SelectThreshold(m *IMIMatrix) float64 {
	return stats.TwoMeansThreshold(m.PairValues(), twoMeansMaxIter)
}

// SelectNodeThreshold runs the same modified K-means over only the values
// involving node i, yielding a per-node pruning threshold τ_i. On large
// networks the global value pool is dominated by the huge mass of weakly
// correlated pairs, which drags the K-means boundary into the noise
// shoulder; the per-node pool keeps the near-zero and significant clusters
// separable, at the cost of n small K-means runs instead of one big one.
func SelectNodeThreshold(m *IMIMatrix, i int) float64 {
	values := make([]float64, 0, m.n-1)
	for j := 0; j < m.n; j++ {
		if j != i {
			values = append(values, m.At(i, j))
		}
	}
	return stats.TwoMeansThreshold(values, 100)
}

// SelectThresholdFDR picks the pruning threshold by false-discovery-rate
// control instead of K-means clustering.
//
// Under independence of two nodes' statuses, the G-statistic 2·ln2·β·MI is
// asymptotically χ²(1)-distributed, and IMI ≤ MI, so 2·ln2·β·IMI is a
// conservative test statistic for "these two infections are positively
// associated". SelectThresholdFDR converts every non-negative pairwise
// value into a p-value and runs the Benjamini–Hochberg step-up procedure at
// level alpha; τ is the smallest accepted value (minus an epsilon so that
// the > τ comparison keeps it). If nothing is significant, τ is set above
// the maximum value, pruning every candidate — the correct answer for
// observations that carry no association signal.
//
// Unlike the K-means heuristic, this rule adapts to the number of node
// pairs tested: on large networks, where true edges are a vanishing
// fraction of all pairs, the admission bar automatically rises. It is the
// library default; the paper's K-means selection remains available via
// Options.ThresholdMethod.
func SelectThresholdFDR(m *IMIMatrix, beta int, alpha float64) float64 {
	vals := m.PairValues()
	sort.Float64s(vals)
	return selectThresholdFDRSorted(vals, beta, alpha)
}

// selectThresholdFDRSorted is SelectThresholdFDR over an already-sorted
// value slice, letting ThresholdAuto share one PairValues copy between the
// K-means and FDR selectors instead of materializing the O(n²) values twice.
func selectThresholdFDRSorted(vals []float64, beta int, alpha float64) float64 {
	if alpha <= 0 || alpha >= 1 {
		panic("core: FDR alpha must be in (0,1)")
	}
	// Walk from the largest value (smallest p) downward; BH accepts the
	// largest k with p_(k) ≤ alpha·k/M.
	mTests := float64(len(vals))
	factor := 2 * math.Ln2 * float64(beta)
	accepted := -1
	for k := 1; k <= len(vals); k++ {
		v := vals[len(vals)-k]
		if v <= 0 {
			break // remaining values have p = 1 and can never qualify
		}
		p := chiSquared1Tail(factor * v)
		if p <= alpha*float64(k)/mTests {
			accepted = k
		}
	}
	if accepted < 0 {
		if len(vals) == 0 {
			return 0
		}
		return vals[len(vals)-1] + 1 // above the maximum: prune everything
	}
	tau := vals[len(vals)-accepted]
	// Candidates are admitted by value > τ, so back off an epsilon to keep
	// the boundary value itself.
	return tau * (1 - 1e-12)
}

// miTable evaluates the pointwise mutual-information cells of Eq. (24)
// against a fixed observation total, with log₂ of every possible count
// precomputed. All counts in a status matrix are integers in [0, β], so
// the cell's log₂(p_xy/(p_x·p_y)) collapses to three table lookups and a
// subtraction instead of a Log2 call — the dominant cost of the O(n²)
// pairwise stage once column scans are hoisted. Within ~1 ulp of
// stats.Contingency2x2.MICell (the identity changes rounding order only).
type miTable struct {
	total    int
	logs     []float64 // logs[k] = log₂(k); index 0 unused
	invTotal float64
	logTotal float64
}

func newMITable(total int) *miTable {
	mt := &miTable{
		total:    total,
		logs:     make([]float64, total+1),
		invTotal: 1 / float64(total),
		logTotal: math.Log2(float64(total)),
	}
	for k := 1; k <= total; k++ {
		mt.logs[k] = math.Log2(float64(k))
	}
	return mt
}

// miTableCache keeps the most recently built log table. The experiment
// harness computes IMI for many cells with the same observation count β
// (every repeat and algorithm of a sweep point, and usually the whole
// figure), so the β+1-entry table is built once and shared instead of being
// rebuilt per cell. Tables are immutable after construction and identical
// for equal totals, so a racing rebuild is benign and the IMI output is
// unaffected.
var miTableCache atomic.Pointer[miTable]

func cachedMITable(total int) *miTable {
	if mt := miTableCache.Load(); mt != nil && mt.total == total {
		return mt
	}
	mt := newMITable(total)
	miTableCache.Store(mt)
	return mt
}

// cell returns P(x,y)·log₂(P(x,y)/(P(x)·P(y))) for a cell with joint count
// nxy and marginal counts nx, ny, using the 0·log0 = 0 convention.
func (mt *miTable) cell(nxy, nx, ny int) float64 {
	if nxy == 0 {
		return 0
	}
	return float64(nxy) * mt.invTotal * (mt.logs[nxy] + mt.logTotal - mt.logs[nx] - mt.logs[ny])
}

// chiSquared1Tail returns P(χ²₁ > t).
func chiSquared1Tail(t float64) float64 {
	if t <= 0 {
		return 1
	}
	return math.Erfc(math.Sqrt(t / 2))
}

// Candidates returns, for node i, every node j with value(i,j) > tau — the
// candidate parent set P_i of Algorithm 1. The result is counted first and
// allocated exactly once, instead of growing through append's doubling.
func (m *IMIMatrix) Candidates(i int, tau float64) []int {
	count := 0
	for j := 0; j < m.n; j++ {
		if j != i && m.vals[triIndex(m.n, i, j)] > tau {
			count++
		}
	}
	if count == 0 {
		return nil
	}
	out := make([]int, 0, count)
	for j := 0; j < m.n; j++ {
		if j != i && m.vals[triIndex(m.n, i, j)] > tau {
			out = append(out, j)
		}
	}
	return out
}
