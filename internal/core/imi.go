package core

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"tends/internal/diffusion"
	"tends/internal/kernel"
	"tends/internal/obs"
)

// IMIMatrix holds the pairwise infection mutual information (Eq. 25) — or,
// in the traditional-MI ablation mode, plain mutual information — between
// every pair of nodes. Both measures are symmetric, so only the upper
// triangle is stored.
type IMIMatrix struct {
	n    int
	vals []float64 // upper triangle, row-major: (i,j) with i<j
}

func triIndex(n, i, j int) int {
	if i > j {
		i, j = j, i
	}
	// Row i starts after rows 0..i-1, which hold (n-1)+(n-2)+...+(n-i) entries.
	return i*(2*n-i-1)/2 + (j - i - 1)
}

// At returns the stored value for the pair (i, j), i != j.
func (m *IMIMatrix) At(i, j int) float64 {
	if i == j {
		panic("core: IMI is undefined for a node with itself")
	}
	return m.vals[triIndex(m.n, i, j)]
}

// N returns the number of nodes.
func (m *IMIMatrix) N() int { return m.n }

// PairValues returns every pairwise value once (each unordered pair).
func (m *IMIMatrix) PairValues() []float64 {
	out := make([]float64, len(m.vals))
	copy(out, m.vals)
	return out
}

// VisitPairValues streams every unordered pairwise value (multiplicity 1)
// without materializing a copy of the triangle; it is how the threshold
// selectors consume the matrix.
func (m *IMIMatrix) VisitPairValues(visit func(v float64, count int64)) {
	for _, v := range m.vals {
		visit(v, 1)
	}
}

func (m *IMIMatrix) valuePool() *valuePool { return poolFrom(m) }

// nodePool summarizes the values involving node i for the per-node
// threshold selector.
func (m *IMIMatrix) nodePool(i int) *valuePool {
	var b poolBuilder
	for j := 0; j < m.n; j++ {
		if j != i {
			b.add(m.vals[triIndex(m.n, i, j)], 1)
		}
	}
	return b.finish()
}

// ComputeIMI builds the pairwise infection-MI matrix from observations. If
// traditional is true it computes plain mutual information instead, the
// ablation of Figs. 10–11. It uses every CPU; ComputeIMIWorkers takes an
// explicit worker count.
func ComputeIMI(sm *diffusion.StatusMatrix, traditional bool) *IMIMatrix {
	return ComputeIMIWorkers(sm, traditional, 0)
}

// ComputeIMIWorkers is ComputeIMI with an explicit concurrency knob,
// mirroring Options.Workers: 0 means GOMAXPROCS, 1 forces serial
// execution. Every (i, j) slot is computed independently from the same
// inputs, so the matrix is bit-identical for any worker count.
func ComputeIMIWorkers(sm *diffusion.StatusMatrix, traditional bool, workers int) *IMIMatrix {
	// Background context never cancels, so the error can be ignored.
	m, _ := ComputeIMIContext(context.Background(), sm, traditional, workers)
	return m
}

// imiRowBlock is the dense kernel's tile height: the number of contiguous
// base columns held hot while a probe column streams past. Eight 8-word
// columns fit comfortably in L1 alongside the probe.
const imiRowBlock = 8

// ComputeIMIContext is ComputeIMIWorkers with cooperative cancellation: the
// O(n²) pairwise stage checks ctx between row blocks and abandons the
// computation — returning ctx's error and no matrix — once the context is
// done. It is the hook the experiment harness uses to impose per-cell
// deadlines on TENDS runs.
func ComputeIMIContext(ctx context.Context, sm *diffusion.StatusMatrix, traditional bool, workers int) (*IMIMatrix, error) {
	// Telemetry handles are resolved once up front; on a recorder-less
	// context they are nil and every update below is an allocation-free
	// no-op, so the pairwise hot loop pays nothing.
	rec := obs.From(ctx)
	defer rec.StartSpan("core/imi").End()
	rowsC := rec.Counter("core/imi/rows")
	pairsC := rec.Counter("core/imi/pairs")
	tilesC := rec.Counter("core/kernel/tiles")
	n := sm.N()
	m := &IMIMatrix{n: n, vals: make([]float64, n*(n-1)/2)}
	if n < 2 {
		return m, ctx.Err()
	}
	beta := sm.Beta()
	words := sm.Words()
	data := sm.ColumnData()
	// Per-node infected counts, computed once up front: building each
	// pair's contingency table through JointCounts would rescan both full
	// columns per pair — O(n²) popcount passes — when only the n11 AND
	// count actually depends on the pair.
	ones := make([]int, n)
	for i := 0; i < n; i++ {
		ones[i] = sm.CountInfected(i)
	}
	mt := cachedMITable(beta)
	// Rows are processed in blocks of imiRowBlock contiguous base columns;
	// each probe column j is ANDed against the whole tile in one kernel
	// call, so the probe's words are read once per tile instead of once per
	// pair. Values are bit-identical to the per-pair walk: n11 is an exact
	// integer either way and the cell arithmetic is unchanged.
	nBlocks := (n - 1 + imiRowBlock - 1) / imiRowBlock
	fillBlock := func(b int, cnt *[imiRowBlock]int) {
		i0 := b * imiRowBlock
		i1 := i0 + imiRowBlock
		if i1 > n-1 {
			i1 = n - 1
		}
		bases := data[i0*words : i1*words]
		var pairs int64
		for j := i0 + 1; j < n; j++ {
			lim := i1
			if j < lim {
				lim = j
			}
			nb := lim - i0
			probe := data[j*words : (j+1)*words]
			kernel.BlockAndCounts(cnt[:nb], bases[:nb*words], probe, words)
			tilesC.Inc()
			nj := ones[j]
			for r := 0; r < nb; r++ {
				i := i0 + r
				m.vals[i*(2*n-i-1)/2+j-i-1] = pairValue(mt, traditional, beta, cnt[r], ones[i], nj)
			}
			pairs += int64(nb)
		}
		rowsC.Add(int64(i1 - i0))
		pairsC.Add(pairs)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nBlocks {
		workers = nBlocks
	}
	if workers <= 1 {
		var cnt [imiRowBlock]int
		for b := 0; b < nBlocks; b++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			fillBlock(b, &cnt)
		}
		return m, nil
	}
	// Workers claim row blocks off a shared counter; blocks shrink as i
	// grows, so dynamic claiming balances the triangular workload better
	// than fixed partitions. Each worker writes disjoint slots of m.vals.
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var cnt [imiRowBlock]int
			for ctx.Err() == nil {
				b := int(next.Add(1)) - 1
				if b >= nBlocks {
					return
				}
				fillBlock(b, &cnt)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

// pairValue computes one pair's value — infection MI (Eq. 25) or, in the
// ablation mode, plain MI — from its contingency counts. Both the dense and
// sparse engines route every value through this single expression, so their
// floating-point results are identical by construction. The marginals are
// canonicalized to ni ≤ nj first: float subtraction order makes the raw
// expression orientation-sensitive at the ulp level, and callers reach the
// same unordered pair from either side (dense row-major, sparse
// neighbor-row, marginal count-class runs).
func pairValue(mt *miTable, traditional bool, beta, n11, ni, nj int) float64 {
	if ni > nj {
		ni, nj = nj, ni
	}
	c11 := mt.cell(n11, ni, nj)
	c00 := mt.cell(beta-ni-nj+n11, beta-ni, beta-nj)
	c10 := mt.cell(ni-n11, ni, beta-nj)
	c01 := mt.cell(nj-n11, beta-ni, nj)
	if traditional {
		return c11 + c00 + c10 + c01
	}
	return c11 + c00 - math.Abs(c10) - math.Abs(c01)
}

// twoMeansMaxIter bounds the modified K-means iterations of the threshold
// selectors (convergence is immediate in practice; see stats.TwoMeansThreshold).
const twoMeansMaxIter = 100

// SelectThreshold runs the modified K-means of Section IV-B over the
// non-negative pairwise values and returns the pruning threshold τ. The
// values are consumed as a run-length pool (see valuePool), not a second
// materialized triangle.
func SelectThreshold(m *IMIMatrix) float64 {
	return m.valuePool().twoMeansTau()
}

// SelectNodeThreshold runs the same modified K-means over only the values
// involving node i, yielding a per-node pruning threshold τ_i. On large
// networks the global value pool is dominated by the huge mass of weakly
// correlated pairs, which drags the K-means boundary into the noise
// shoulder; the per-node pool keeps the near-zero and significant clusters
// separable, at the cost of n small K-means runs instead of one big one.
func SelectNodeThreshold(m *IMIMatrix, i int) float64 {
	return m.nodePool(i).twoMeansTau()
}

// SelectThresholdFDR picks the pruning threshold by false-discovery-rate
// control instead of K-means clustering.
//
// Under independence of two nodes' statuses, the G-statistic 2·ln2·β·MI is
// asymptotically χ²(1)-distributed, and IMI ≤ MI, so 2·ln2·β·IMI is a
// conservative test statistic for "these two infections are positively
// associated". SelectThresholdFDR converts every non-negative pairwise
// value into a p-value and runs the Benjamini–Hochberg step-up procedure at
// level alpha; τ is the smallest accepted value (minus an epsilon so that
// the > τ comparison keeps it). If nothing is significant, τ is set above
// the maximum value, pruning every candidate — the correct answer for
// observations that carry no association signal.
//
// Unlike the K-means heuristic, this rule adapts to the number of node
// pairs tested: on large networks, where true edges are a vanishing
// fraction of all pairs, the admission bar automatically rises. It is the
// library default; the paper's K-means selection remains available via
// Options.ThresholdMethod.
func SelectThresholdFDR(m *IMIMatrix, beta int, alpha float64) float64 {
	return m.valuePool().fdrTau(beta, alpha)
}

// miTable evaluates the pointwise mutual-information cells of Eq. (24)
// against a fixed observation total, with log₂ of every possible count
// precomputed. All counts in a status matrix are integers in [0, β], so
// the cell's log₂(p_xy/(p_x·p_y)) collapses to three table lookups and a
// subtraction instead of a Log2 call — the dominant cost of the O(n²)
// pairwise stage once column scans are hoisted. Within ~1 ulp of
// stats.Contingency2x2.MICell (the identity changes rounding order only).
type miTable struct {
	total    int
	logs     []float64 // logs[k] = log₂(k); index 0 unused
	invTotal float64
	logTotal float64
}

func newMITable(total int) *miTable {
	mt := &miTable{
		total:    total,
		logs:     make([]float64, total+1),
		invTotal: 1 / float64(total),
		logTotal: math.Log2(float64(total)),
	}
	for k := 1; k <= total; k++ {
		mt.logs[k] = math.Log2(float64(k))
	}
	return mt
}

// miTableCache keeps the most recently built log table. The experiment
// harness computes IMI for many cells with the same observation count β
// (every repeat and algorithm of a sweep point, and usually the whole
// figure), so the β+1-entry table is built once and shared instead of being
// rebuilt per cell. Tables are immutable after construction and identical
// for equal totals, so a racing rebuild is benign and the IMI output is
// unaffected.
var miTableCache atomic.Pointer[miTable]

func cachedMITable(total int) *miTable {
	if mt := miTableCache.Load(); mt != nil && mt.total == total {
		return mt
	}
	mt := newMITable(total)
	miTableCache.Store(mt)
	return mt
}

// cell returns P(x,y)·log₂(P(x,y)/(P(x)·P(y))) for a cell with joint count
// nxy and marginal counts nx, ny, using the 0·log0 = 0 convention.
func (mt *miTable) cell(nxy, nx, ny int) float64 {
	if nxy == 0 {
		return 0
	}
	return float64(nxy) * mt.invTotal * (mt.logs[nxy] + mt.logTotal - mt.logs[nx] - mt.logs[ny])
}

// chiSquared1Tail returns P(χ²₁ > t).
func chiSquared1Tail(t float64) float64 {
	if t <= 0 {
		return 1
	}
	return math.Erfc(math.Sqrt(t / 2))
}

// Candidates returns, for node i, every node j with value(i,j) > tau — the
// candidate parent set P_i of Algorithm 1. The result is counted first and
// allocated exactly once, instead of growing through append's doubling.
func (m *IMIMatrix) Candidates(i int, tau float64) []int {
	count := 0
	for j := 0; j < m.n; j++ {
		if j != i && m.vals[triIndex(m.n, i, j)] > tau {
			count++
		}
	}
	if count == 0 {
		return nil
	}
	out := make([]int, 0, count)
	for j := 0; j < m.n; j++ {
		if j != i && m.vals[triIndex(m.n, i, j)] > tau {
			out = append(out, j)
		}
	}
	return out
}
