package core

import (
	"container/heap"
	"context"
	"fmt"
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"time"

	"tends/internal/chaos"
	"tends/internal/diffusion"
	"tends/internal/graph"
	"tends/internal/obs"
)

// pairSource is the read surface the inference pipeline needs from a
// pairwise engine; both the dense IMIMatrix and the SparseIMI satisfy it
// with bit-identical values, thresholds, and candidate sets.
type pairSource interface {
	N() int
	At(i, j int) float64
	Candidates(i int, tau float64) []int
	valuePool() *valuePool
	nodePool(i int) *valuePool
}

// Options tunes the TENDS algorithm. The zero value reproduces the paper's
// configuration.
type Options struct {
	// MaxComboSize bounds the size of the parent-node combinations W
	// enumerated per node (the paper's η). Values above it are never
	// enumerated even when Theorem 2 would allow them, keeping the
	// combination count polynomial. 0 means the default of 2.
	MaxComboSize int

	// ThresholdScale multiplies the automatically selected pruning
	// threshold τ, the sweep of Figs. 10–11. 0 means 1 (use τ as found).
	ThresholdScale float64

	// FixedThreshold, when non-nil, bypasses threshold selection entirely
	// and prunes with the given absolute IMI value.
	FixedThreshold *float64

	// TraditionalMI replaces infection MI with plain mutual information in
	// the pruning stage (the ablation of Figs. 10–11).
	TraditionalMI bool

	// MaxCandidates keeps only the top-k candidates per node by IMI value
	// after thresholding. Saturated diffusions (large α·n, high μ) can
	// leave a hundred-plus weakly correlated candidates per node, which
	// the paper's κ ≪ n assumption does not anticipate; the cap bounds
	// the combination enumeration there. True parents carry the largest
	// IMI values, so the cap rarely costs recall. 0 means the default of
	// 32; negative means unlimited (the literal paper configuration).
	MaxCandidates int

	// ThresholdMethod selects how the pruning threshold τ is derived from
	// the pairwise values; see the constants for the trade-offs.
	// ThresholdScale multiplies whichever threshold is selected.
	ThresholdMethod ThresholdMethod

	// FDRAlpha is the false-discovery-rate level used by ThresholdAuto and
	// ThresholdFDR. 0 means the default of 0.2, which lands the threshold
	// at the F-score optimum across the calibration workloads; note the
	// IMI statistic undershoots the χ²(1) null it is tested against, so
	// the realized false-discovery rate is far below this nominal level.
	FDRAlpha float64

	// Penalty selects the statistical-error penalty of the local score;
	// the zero value is the paper's Eq. (13) penalty. See PenaltyMode.
	Penalty PenaltyMode

	// DisableBound ignores the Theorem-2 upper bound (ablation).
	DisableBound bool

	// StaticGreedy follows Algorithm 1 literally: combinations are ranked
	// once by their standalone score g(v_i, W) and merged in that order
	// subject only to the Theorem-2 bound. The default (false) follows the
	// prose of Section IV-A: a combination is merged only when it improves
	// the current g(v_i, F_i), recomputed as F_i grows — which is both
	// closer to the described greedy and more precise.
	StaticGreedy bool

	// Workers sets the number of goroutines searching parent sets; the
	// per-node searches are independent, so the output is identical for
	// any worker count. 0 means GOMAXPROCS; 1 forces serial execution.
	Workers int

	// BackwardPrune adds a backward-elimination pass after the greedy
	// expansion: parents whose removal does not decrease g(v_i, F_i) are
	// dropped, to a fixpoint. The forward greedy merges whole combinations
	// and can strand a member whose contribution the rest of the set
	// already explains; the backward pass cleans those up, trading a
	// little extra scoring work for precision. An extension beyond the
	// paper's Algorithm 1 (off by default).
	BackwardPrune bool

	// NodeDeadline is a soft per-node deadline on the parent-set search.
	// A node whose enumeration or greedy merge outlives it keeps its
	// best-so-far parent set instead of failing the inference, and the node
	// is reported in Result.Degraded with DegradeDeadline. Wall-clock based,
	// so WHICH work survives the cut is timing-dependent; the result is
	// still always a valid (possibly empty) parent set. 0 disables it.
	NodeDeadline time.Duration

	// ComboBudget caps the combinations enumerated per node. A node whose
	// enumeration hits the cap merges only the combinations found so far and
	// is reported in Result.Degraded with DegradeComboBudget. Unlike
	// NodeDeadline this cut is deterministic: enumeration order is fixed, so
	// the same inputs degrade identically at any worker count. The budget is
	// checked between top-level enumeration subtrees, so it can overshoot by
	// one subtree. 0 disables it.
	ComboBudget int

	// Sparse routes the pairwise stage through the co-occurrence sparse
	// engine (see SparseIMI) instead of materializing the dense n(n−1)/2
	// triangle. The inferred topology, thresholds, and scores are
	// bit-identical to the dense path at any worker count; only the cost
	// model changes — O(Σ_c |infected(c)|²) instead of O(n²·β/64) — which
	// is what makes n ≥ 10⁵ inference tractable.
	Sparse bool

	// SkipNodes marks nodes whose parent-set search is skipped entirely:
	// they keep empty parent sets and are NOT reported in Result.Degraded.
	// The supervisor's node-level resume uses it to continue a killed shard
	// from its partial journal — already-journaled nodes are skipped and
	// their recorded parents folded back in by the caller. Indices outside
	// [0, n) are ignored.
	SkipNodes map[int]bool

	// OnSearchStart, when non-nil, is called once after threshold selection
	// and before any parent-set search, with the global pruning threshold
	// the search will use. A returned error aborts the inference. The
	// supervised shard worker uses it to write (or cross-check) its journal
	// header — the header carries τ, which is only known here — before node
	// records start streaming.
	OnSearchStart func(threshold float64) error

	// OnNodeDone, when non-nil, is called after each searched node with its
	// final parent set (nodes outside the shard or in SkipNodes are never
	// reported). Calls come from the search workers, possibly concurrently;
	// the callback must be safe for concurrent use. The first returned
	// error cancels the remaining search and fails the inference (unless
	// degradation is enabled, in which case the error still fails the
	// inference after the degraded search drains). The supervised shard
	// worker uses it to journal each node as soon as it completes.
	OnNodeDone func(node int, parents []int) error

	// ShardIndex/ShardCount split the node-local parent search across
	// processes: with ShardCount = k > 1, only nodes i with i mod k ==
	// ShardIndex are searched; the rest keep empty parent sets. The
	// pairwise stage and the global threshold are still computed in full
	// (they are cheap next to the search and must be identical across
	// shards), so concatenating the per-node results of all k shards
	// reproduces the unsharded topology exactly — the score decomposes
	// node-locally (Eq. 13). Result.Score covers only the shard's nodes'
	// local scores plus the empty-set scores of the others; merge tooling
	// recomputes the full-topology score. ShardCount 0 or 1 disables
	// sharding (ShardIndex must then be 0).
	ShardIndex int
	ShardCount int
}

// degradeMode reports whether graceful degradation is enabled: with either
// limit set, a node search cut short — by its deadline, its budget, or a
// cancelled context — keeps its best-so-far parents instead of erroring the
// whole inference.
func (o Options) degradeMode() bool {
	return o.NodeDeadline > 0 || o.ComboBudget > 0
}

// DegradeReason says why a node's parent-set search was cut short.
type DegradeReason uint8

const (
	// DegradeNone marks an undegraded node (never reported).
	DegradeNone DegradeReason = iota
	// DegradeDeadline: the node breached Options.NodeDeadline.
	DegradeDeadline
	// DegradeComboBudget: the node's enumeration hit Options.ComboBudget.
	DegradeComboBudget
	// DegradeCancelled: the context fired (cell timeout or run cancellation)
	// while the node's search was running or still queued.
	DegradeCancelled
)

// String returns the reason's report name.
func (r DegradeReason) String() string {
	switch r {
	case DegradeNone:
		return "none"
	case DegradeDeadline:
		return "deadline"
	case DegradeComboBudget:
		return "combo_budget"
	case DegradeCancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("DegradeReason(%d)", int(r))
	}
}

// NodeDegrade is one degraded node of a DegradeReport.
type NodeDegrade struct {
	Node   int
	Reason DegradeReason
}

// ThresholdMethod enumerates the pruning-threshold selection strategies.
type ThresholdMethod int

const (
	// ThresholdAuto (the default) takes the larger of the K-means and FDR
	// thresholds: a candidate must sit in the K-means significant cluster
	// AND be statistically significant under FDR control. The two rules
	// fail in opposite regimes — K-means collapses into the noise shoulder
	// on large networks where true edges are a vanishing fraction of all
	// pairs, while pure FDR admits real-but-indirect dependencies when β
	// is very large — and their maximum is robust across both.
	ThresholdAuto ThresholdMethod = iota
	// ThresholdKMeans is the paper's Section IV-B heuristic: one modified
	// K-means (K=2, one centroid pinned at 0) over all non-negative
	// pairwise values; τ is the largest value in the near-zero cluster.
	ThresholdKMeans
	// ThresholdKMeansPerNode runs the paper's K-means separately over the
	// values involving each node, yielding per-node thresholds τ_i.
	ThresholdKMeansPerNode
	// ThresholdFDR calibrates the pairwise values against the χ²(1) null
	// and runs Benjamini–Hochberg at FDRAlpha, with no clustering.
	ThresholdFDR
)

func (o Options) withDefaults() Options {
	if o.MaxComboSize == 0 {
		o.MaxComboSize = 2
	}
	if o.ThresholdScale == 0 {
		o.ThresholdScale = 1
	}
	if o.MaxCandidates == 0 {
		o.MaxCandidates = 32
	}
	if o.FDRAlpha == 0 {
		o.FDRAlpha = 0.2
	}
	return o
}

// Result carries the inferred topology along with the intermediate
// artifacts that the experiments and diagnostics report on.
type Result struct {
	Graph     *graph.Directed
	Threshold float64 // the global pruning threshold (after scaling/override)
	AutoTau   float64 // the global τ selected by the K-means heuristic
	// NodeThresholds holds the per-node τ_i actually applied under
	// ThresholdKMeansPerNode; nil for the global methods.
	NodeThresholds []float64
	Parents        [][]int // parent set per node
	Score          float64 // g(T) of the inferred topology
	// Degraded is the degradation report: the nodes whose parent-set search
	// was cut short (by Options.NodeDeadline, Options.ComboBudget, or
	// cancellation while degradation is enabled), ascending by node. Each
	// kept its best-so-far parents — a subset of what a full search finds.
	// Empty when every node searched to completion.
	Degraded []NodeDegrade
}

// Infer reconstructs the diffusion network topology from final infection
// statuses, per Algorithm 1 of the paper.
func Infer(sm *diffusion.StatusMatrix, opt Options) (*Result, error) {
	return InferContext(context.Background(), sm, opt)
}

// InferContext is Infer with cooperative cancellation: the IMI stage checks
// the context between matrix rows and the parent-set search between nodes
// (and between greedy merges inside a node's search), so a cancelled or
// timed-out context makes inference return promptly with the context's
// error instead of running to completion. The inferred topology for a
// context that never fires is identical to Infer's.
//
// With graceful degradation enabled (Options.NodeDeadline or ComboBudget
// set), a context that fires during the parent-set search no longer fails
// the inference: nodes already searched keep their parents, interrupted and
// unsearched nodes keep their best-so-far (possibly empty) sets, and every
// cut-short node is listed in Result.Degraded. Cancellation before the
// search stage (during IMI or thresholding) still errors — there is no
// partial topology to salvage there.
func InferContext(ctx context.Context, sm *diffusion.StatusMatrix, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	if err := chaos.Maybe(ctx, chaos.SiteCoreInfer); err != nil {
		return nil, err
	}
	if err := validateOptions(sm, opt); err != nil {
		return nil, err
	}

	// Telemetry: nil handles (no recorder in ctx) make every update below a
	// free no-op; inference output is never affected.
	rec := obs.From(ctx)
	defer rec.StartSpan("core/infer").End()

	var imi pairSource
	if opt.Sparse {
		sp, serr := ComputeSparseIMIContext(ctx, sm, opt.TraditionalMI, opt.Workers)
		if serr != nil {
			return nil, fmt.Errorf("core: IMI stage: %w", serr)
		}
		imi = sp
	} else {
		dense, derr := ComputeIMIContext(ctx, sm, opt.TraditionalMI, opt.Workers)
		if derr != nil {
			return nil, fmt.Errorf("core: IMI stage: %w", derr)
		}
		imi = dense
	}
	return inferStages(ctx, sm, imi, opt)
}

// validateOptions rejects inconsistent inference inputs; it is shared by
// InferContext and the incremental-count entry point so both fail the same
// way on the same misconfigurations.
func validateOptions(sm *diffusion.StatusMatrix, opt Options) error {
	if sm.N() == 0 {
		return fmt.Errorf("core: status matrix has no nodes")
	}
	if sm.Beta() == 0 {
		return fmt.Errorf("core: status matrix has no observations")
	}
	if opt.MaxComboSize < 1 {
		return fmt.Errorf("core: MaxComboSize must be >= 1, got %d", opt.MaxComboSize)
	}
	if opt.ThresholdScale < 0 {
		return fmt.Errorf("core: ThresholdScale must be non-negative, got %v", opt.ThresholdScale)
	}
	if opt.ShardCount < 0 {
		return fmt.Errorf("core: ShardCount must be non-negative, got %d", opt.ShardCount)
	}
	if opt.ShardCount > 0 && (opt.ShardIndex < 0 || opt.ShardIndex >= opt.ShardCount) {
		return fmt.Errorf("core: ShardIndex %d outside [0,%d)", opt.ShardIndex, opt.ShardCount)
	}
	if opt.ShardCount == 0 && opt.ShardIndex != 0 {
		return fmt.Errorf("core: ShardIndex %d set without ShardCount", opt.ShardIndex)
	}
	return nil
}

// inferStages runs everything after the pairwise stage — threshold
// selection, the per-node parent search, degradation reporting, and scoring
// — over any pairwise source. The dense, sparse, and incremental-count
// engines all produce bit-identical sources, so the stages (and therefore
// the inferred topology) are engine-independent.
func inferStages(ctx context.Context, sm *diffusion.StatusMatrix, imi pairSource, opt Options) (*Result, error) {
	rec := obs.From(ctx)
	tel := coreTel{
		combos: rec.Counter("core/search/combos"),
		merges: rec.Counter("core/search/merges"),
	}
	thresholdSpan := rec.StartSpan("core/threshold")
	var autoTau float64
	switch opt.ThresholdMethod {
	case ThresholdAuto:
		// Both selectors consume the same run-length value pool (no second
		// O(n²) triangle is materialized); build it once and share it.
		pool := imi.valuePool()
		autoTau = max(pool.twoMeansTau(), pool.fdrTau(sm.Beta(), opt.FDRAlpha))
	case ThresholdFDR:
		autoTau = imi.valuePool().fdrTau(sm.Beta(), opt.FDRAlpha)
	case ThresholdKMeans, ThresholdKMeansPerNode:
		autoTau = imi.valuePool().twoMeansTau()
	default:
		return nil, fmt.Errorf("core: unknown threshold method %d", opt.ThresholdMethod)
	}
	tau := autoTau * opt.ThresholdScale
	if opt.FixedThreshold != nil {
		tau = *opt.FixedThreshold
	}

	scorer := NewScorer(sm)
	scorer.SetPenaltyMode(opt.Penalty)
	n := sm.N()
	res := &Result{
		Graph:     graph.New(n),
		Threshold: tau,
		AutoTau:   autoTau,
		Parents:   make([][]int, n),
	}
	perNode := opt.FixedThreshold == nil && opt.ThresholdMethod == ThresholdKMeansPerNode
	if perNode {
		res.NodeThresholds = make([]float64, n)
		for i := 0; i < n; i++ {
			res.NodeThresholds[i] = imi.nodePool(i).twoMeansTau() * opt.ThresholdScale
		}
	}
	thresholdSpan.End()
	if opt.OnSearchStart != nil {
		if err := opt.OnSearchStart(tau); err != nil {
			return nil, fmt.Errorf("core: search start: %w", err)
		}
	}
	searchSpan := rec.StartSpan("core/search")
	degrade := opt.degradeMode()
	inShard := func(i int) bool {
		return (opt.ShardCount <= 1 || i%opt.ShardCount == opt.ShardIndex) && !opt.SkipNodes[i]
	}
	// OnNodeDone errors cancel the remaining search through a sub-context;
	// the first error wins and fails the inference after the workers drain.
	sctx := ctx
	var hookMu sync.Mutex
	var hookErr error
	onNodeErr := func(err error) {}
	if opt.OnNodeDone != nil {
		var cancel context.CancelFunc
		sctx, cancel = context.WithCancel(ctx)
		defer cancel()
		onNodeErr = func(err error) {
			hookMu.Lock()
			if hookErr == nil {
				hookErr = err
				cancel()
			}
			hookMu.Unlock()
		}
	}
	reasons := make([]DegradeReason, n)
	searchNode := func(i int) {
		nodeTau := tau
		if perNode {
			nodeTau = res.NodeThresholds[i]
		}
		cands := imi.Candidates(i, nodeTau)
		if opt.MaxCandidates > 0 && len(cands) > opt.MaxCandidates {
			sort.Slice(cands, func(a, b int) bool { return imi.At(i, cands[a]) > imi.At(i, cands[b]) })
			cands = cands[:opt.MaxCandidates]
			sort.Ints(cands)
		}
		res.Parents[i], reasons[i] = searchParents(sctx, scorer, i, cands, opt, tel)
		// Only fully searched nodes reach the callback: a node cut short
		// (degraded or cancelled) has a partial answer the journal must not
		// record as complete.
		if opt.OnNodeDone != nil && reasons[i] == DegradeNone {
			if err := opt.OnNodeDone(i, res.Parents[i]); err != nil {
				onNodeErr(err)
			}
		}
	}

	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if !inShard(i) {
				continue
			}
			if sctx.Err() != nil {
				if !degrade {
					break
				}
				reasons[i] = DegradeCancelled
				continue
			}
			searchNode(i)
		}
	} else {
		// The per-node searches only read the scorer and IMI matrix;
		// each worker writes a disjoint slot of res.Parents (and reasons),
		// so the output is identical for any worker count.
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					if sctx.Err() != nil {
						// Drain the channel without working; in degrade
						// mode the skipped node is reported, not lost.
						if degrade {
							reasons[i] = DegradeCancelled
						}
						continue
					}
					searchNode(i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			if inShard(i) {
				next <- i
			}
		}
		close(next)
		wg.Wait()
	}
	searchSpan.End()
	hookMu.Lock()
	ferr := hookErr
	hookMu.Unlock()
	if ferr != nil {
		return nil, fmt.Errorf("core: node callback: %w", ferr)
	}
	if err := ctx.Err(); err != nil && !degrade {
		return nil, fmt.Errorf("core: parent search: %w", err)
	}
	var deadlineC, budgetC, cancelC *obs.Counter
	for i, r := range reasons {
		if r == DegradeNone {
			continue
		}
		res.Degraded = append(res.Degraded, NodeDegrade{Node: i, Reason: r})
		switch r {
		case DegradeDeadline:
			if deadlineC == nil {
				deadlineC = rec.Counter("core/degraded/deadline")
			}
			deadlineC.Inc()
		case DegradeComboBudget:
			if budgetC == nil {
				budgetC = rec.Counter("core/degraded/combo_budget")
			}
			budgetC.Inc()
		case DegradeCancelled:
			if cancelC == nil {
				cancelC = rec.Counter("core/degraded/cancelled")
			}
			cancelC.Inc()
		}
	}
	for i, parents := range res.Parents {
		for _, p := range parents {
			res.Graph.AddEdge(p, i)
		}
	}
	res.Score = scorer.TotalScore(res.Parents)
	return res, nil
}

// coreTel bundles the telemetry handles the per-node searches update; the
// zero value (nil counters) is a valid no-op.
type coreTel struct {
	combos *obs.Counter // combinations enumerated across all nodes
	merges *obs.Counter // greedy merge steps accepted across all nodes
}

// searchParents runs the greedy most-probable-parent-set search for one
// node over the pruned candidate set, returning the parents and the reason
// the search was cut short (DegradeNone when it ran to completion). A
// cancelled context makes it bail out between phases with whatever partial
// answer it has; without degradation enabled InferContext discards the
// partial topology and surfaces the context error, with it the partial
// answer is the node's result.
func searchParents(ctx context.Context, s *Scorer, child int, cands []int, opt Options, tel coreTel) ([]int, DegradeReason) {
	if len(cands) == 0 {
		return nil, DegradeNone
	}
	// The soft deadline covers the node's whole search: enumeration and
	// merge share it, so a node that burns its budget enumerating still
	// stops merging on time.
	var deadline time.Time
	if opt.NodeDeadline > 0 {
		deadline = time.Now().Add(opt.NodeDeadline)
	}
	combos, reason := enumerateCombos(ctx, s, child, cands, opt, deadline)
	tel.combos.Add(int64(len(combos)))
	if ctx.Err() != nil && reason == DegradeNone {
		reason = DegradeCancelled
	}
	if len(combos) == 0 || ctx.Err() != nil {
		return nil, reason
	}
	var parents []int
	var cut bool
	if opt.StaticGreedy {
		parents, cut = staticMerge(s, child, combos, opt, tel.merges, deadline)
	} else {
		parents, cut = adaptiveMerge(ctx, s, child, combos, opt, tel.merges, deadline)
	}
	if reason == DegradeNone {
		switch {
		case cut:
			reason = DegradeDeadline
		case ctx.Err() != nil:
			reason = DegradeCancelled
		}
	}
	if opt.BackwardPrune && reason == DegradeNone {
		parents = backwardPrune(s, child, parents)
	}
	return parents, reason
}

// backwardPrune drops parents whose removal does not decrease the local
// score, iterating to a fixpoint. Each pass removes the single parent whose
// removal improves the score the most (ties to the removal that loses the
// least), so the result does not depend on parent ordering.
func backwardPrune(s *Scorer, child int, parents []int) []int {
	cur := append([]int(nil), parents...)
	curScore := s.LocalScore(child, cur)
	for len(cur) > 0 {
		bestIdx := -1
		bestScore := curScore
		for i := range cur {
			trial := make([]int, 0, len(cur)-1)
			trial = append(trial, cur[:i]...)
			trial = append(trial, cur[i+1:]...)
			if sc := s.LocalScore(child, trial); sc >= bestScore {
				bestScore = sc
				bestIdx = i
			}
		}
		if bestIdx < 0 {
			break
		}
		cur = append(cur[:bestIdx], cur[bestIdx+1:]...)
		curScore = bestScore
	}
	return cur
}

// combo is a candidate parent-node combination W with its standalone score
// g(v_i, W). When the candidate pool fits in 64 bits, mask holds W's
// membership as bits over the candidate indices (bit k ⇔ cands[k], in
// ascending order matching nodes); 0 means no mask was assigned and the
// merges fall back to map-based membership.
type combo struct {
	nodes []int
	score float64
	mask  uint64
}

// enumerateCombos lists every combination W ⊆ cands with |W| ≤ MaxComboSize
// that satisfies the Theorem-2 size condition |W| ≤ log₂(φ_W + δ_i)
// (Algorithm 1 line 13), along with its local score.
//
// Scoring shares work along the DFS: the 2^d status masks of the current
// combination are derived incrementally from its (d-1)-prefix's masks in a
// comboScratch, one AND/ANDNOT per mask, instead of rebuilding every mask
// from all d columns per combination as a fresh LocalScoreParts call
// would. Past the packed/generic crossover the per-process fallback takes
// over unchanged.
//
// Enumeration can be cut short three ways, reported through the returned
// reason alongside whatever combinations were listed so far: context
// cancellation, the node's soft deadline (when nonzero), and the
// combination budget (when Options.ComboBudget > 0). All three are checked
// at top-level subtree boundaries, so the budget cut is a deterministic
// function of the enumeration order, not of timing.
func enumerateCombos(ctx context.Context, s *Scorer, child int, cands []int, opt Options, deadline time.Time) ([]combo, DegradeReason) {
	var out []combo
	reason := DegradeNone
	maxSize := opt.MaxComboSize
	if maxSize > len(cands) {
		maxSize = len(cands)
	}
	if maxSize < 1 {
		return nil, DegradeNone
	}
	sc := s.newComboScratch(maxSize)
	packedLim := sc.packedLimit()
	cur := make([]int, 0, maxSize)
	maskable := len(cands) <= 64
	var curMask uint64
	var rec func(start int)
	rec = func(start int) {
		if d := len(cur); d > 0 {
			var parts ScoreParts
			if d <= packedLim {
				parts = s.scoreLevel(child, sc.levels[d], d)
			} else {
				parts = s.LocalScoreParts(child, cur)
			}
			if opt.DisableBound || s.BoundHolds(child, d, parts.Phi) {
				out = append(out, combo{nodes: append([]int(nil), cur...), score: parts.Score(), mask: curMask})
			} else {
				// Supersets only get larger; Theorem 2 will reject them
				// too once φ growth stalls, but φ can grow with the set,
				// so keep enumerating (no early cut here) — the size cap
				// keeps this cheap.
			}
		}
		if len(cur) == maxSize {
			return
		}
		for k := start; k < len(cands); k++ {
			// Check the cut conditions once per top-level subtree: a weak
			// threshold can make a single node's enumeration combinatorial,
			// and cancellation, the soft deadline and the combination budget
			// must all be able to interrupt it mid-node.
			if len(cur) == 0 {
				switch {
				case ctx.Err() != nil:
					reason = DegradeCancelled
				case !deadline.IsZero() && time.Now().After(deadline):
					reason = DegradeDeadline
				case opt.ComboBudget > 0 && len(out) >= opt.ComboBudget:
					reason = DegradeComboBudget
				}
				if reason != DegradeNone {
					return
				}
			}
			cur = append(cur, cands[k])
			if maskable {
				curMask |= 1 << uint(k)
			}
			if d := len(cur); d <= packedLim {
				sc.extend(s, d, cands[k])
			}
			rec(k + 1)
			cur = cur[:len(cur)-1]
			if maskable {
				curMask &^= 1 << uint(k)
			}
		}
	}
	rec(0)
	return out, reason
}

// adaptiveMerge implements the greedy of Section IV-A's prose: starting
// from F = ∅, repeatedly merge the combination that most increases the
// current g(v_i, F), while the Theorem-2 bound holds; stop when no
// remaining combination improves the score.
//
// The candidate scan is lazily evaluated: combinations are kept in a
// max-heap keyed by their last-computed score improvement, and only the
// heap top is re-evaluated against the grown F. Improvements shrink as F
// absorbs the signal a combination carries, so stale heads re-sink and the
// scan touches a small fraction of the combination pool per iteration.
//
// When the node's soft deadline (nonzero) passes mid-merge, the loop stops
// with the parents merged so far and reports cut = true; the caller keeps
// the partial set as the node's degraded answer.
func adaptiveMerge(ctx context.Context, s *Scorer, child int, combos []combo, opt Options, merges *obs.Counter, deadline time.Time) (parents []int, cut bool) {
	st := newMergeState(combos)
	curScore := s.LocalScore(child, nil)
	emptyScore := curScore

	h := make(comboHeap, 0, len(combos))
	for _, c := range combos {
		// Initial key: standalone score relative to the empty set.
		h = append(h, lazyCombo{combo: c, gain: c.score - emptyScore, round: 0})
	}
	heap.Init(&h)

	round := 0
	for h.Len() > 0 && ctx.Err() == nil {
		if !deadline.IsZero() && time.Now().After(deadline) {
			cut = true
			break
		}
		top := &h[0]
		if top.gain <= 0 {
			break
		}
		if top.round != round {
			union := st.probeUnion(&top.combo)
			if union == nil {
				heap.Pop(&h)
				continue
			}
			parts := s.LocalScoreParts(child, union)
			if !opt.DisableBound && !s.BoundHolds(child, len(union), parts.Phi) {
				heap.Pop(&h)
				continue
			}
			top.gain = parts.Score() - curScore
			top.round = round
			if top.gain <= 0 {
				heap.Pop(&h)
				continue
			}
			heap.Fix(&h, 0)
			continue
		}
		// Fresh top: accept it. The probe cannot fail here — a top at the
		// current round either passed it this round or is an initial entry
		// probed against the empty set.
		union := st.probeUnion(&top.combo)
		if union == nil {
			heap.Pop(&h)
			continue
		}
		curScore += top.gain
		st.accept(&top.combo, union)
		heap.Pop(&h)
		merges.Inc()
		round++
	}
	sort.Ints(st.parents)
	return st.parents, cut
}

// lazyCombo is a heap entry: a combination with its last-computed score
// improvement and the greedy round it was computed in.
type lazyCombo struct {
	combo
	gain  float64
	round int
}

type comboHeap []lazyCombo

func (h comboHeap) Len() int           { return len(h) }
func (h comboHeap) Less(i, j int) bool { return h[i].gain > h[j].gain }
func (h comboHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *comboHeap) Push(x any)        { *h = append(*h, x.(lazyCombo)) }
func (h *comboHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// staticMerge is Algorithm 1 taken literally: walk combinations in
// descending standalone score and merge each whose union with F keeps the
// Theorem-2 bound. Like adaptiveMerge it stops at the node's soft deadline
// with the parents merged so far, reporting cut = true.
func staticMerge(s *Scorer, child int, combos []combo, opt Options, merges *obs.Counter, deadline time.Time) (parents []int, cut bool) {
	sorted := append([]combo(nil), combos...)
	sort.SliceStable(sorted, func(a, b int) bool { return sorted[a].score > sorted[b].score })
	st := newMergeState(sorted)
	for i := range sorted {
		if !deadline.IsZero() && time.Now().After(deadline) {
			cut = true
			break
		}
		c := &sorted[i]
		union := st.probeUnion(c)
		if union == nil {
			continue
		}
		parts := s.LocalScoreParts(child, union)
		if !opt.DisableBound && !s.BoundHolds(child, len(union), parts.Phi) {
			continue
		}
		st.accept(c, union)
		merges.Inc()
	}
	sort.Ints(st.parents)
	return st.parents, cut
}

// mergeState tracks the greedy merges' growing parent set F without
// per-probe allocations. Membership is a uint64 bitmask over the candidate
// indices assigned in enumerateCombos whenever the pool fits in 64 bits —
// the common case, since MaxCandidates defaults to 32 — with a map fallback
// for unbounded pools. Probe unions are built in a reusable buffer, so a
// rejected probe allocates nothing at all.
type mergeState struct {
	mask    uint64
	inF     map[int]bool // non-nil only when the combos carry no masks
	parents []int
	buf     []int
}

func newMergeState(combos []combo) *mergeState {
	st := &mergeState{}
	if len(combos) > 0 && combos[0].mask == 0 {
		st.inF = make(map[int]bool)
	}
	return st
}

// probeUnion returns F ∪ W in scoring order — the current parents followed
// by W's new nodes in W order — or nil when the union adds nothing or would
// exceed 63 parents. The returned slice aliases the reusable buffer and is
// valid only until the next probe; pass it to accept to make it the parent
// set.
func (st *mergeState) probeUnion(c *combo) []int {
	if st.inF == nil {
		um := st.mask | c.mask
		if um == st.mask || bits.OnesCount64(um) > 63 {
			return nil
		}
		st.buf = append(st.buf[:0], st.parents...)
		// The i-th lowest set bit of c.mask corresponds to c.nodes[i]
		// (both ascend through the candidate pool), so walk them in step
		// to pick out the nodes not yet in F.
		rem := c.mask
		newBits := c.mask &^ st.mask
		for _, v := range c.nodes {
			bit := rem & (-rem)
			rem &^= bit
			if newBits&bit != 0 {
				st.buf = append(st.buf, v)
			}
		}
		return st.buf
	}
	union := append(st.buf[:0], st.parents...)
	for _, v := range c.nodes {
		if !st.inF[v] {
			union = append(union, v)
		}
	}
	st.buf = union
	if len(union) == len(st.parents) || len(union) > 63 {
		return nil
	}
	return union
}

// accept commits a probed union as the new parent set.
func (st *mergeState) accept(c *combo, union []int) {
	st.parents = append(st.parents, union[len(st.parents):]...)
	if st.inF == nil {
		st.mask |= c.mask
	} else {
		for _, v := range st.parents {
			st.inF[v] = true
		}
	}
}
