package core

import (
	"context"
	"fmt"
	"math"
	"slices"
	"sort"

	"tends/internal/diffusion"
	"tends/internal/obs"
)

// IncrementalCounts maintains the IMI contingency counts of a growing
// observation stream. The IMI statistic of Eq. (25) is a decomposable sum
// over processes — a pair's value is a pure function of (β, n11, ni, nj) —
// so appending one final-status vector touches only the infected nodes'
// marginal counts and the co-occurrence counts of the infected pairs:
// O(s²) work for a cascade with s infected nodes, with no rescan of earlier
// observations. Source then assembles the counts into the same sparse
// pairwise engine the batch path builds, so the values, thresholds, and
// inferred topologies are bit-identical to a from-scratch ComputeIMI /
// ComputeSparseIMI over the concatenated status matrix — the property the
// streaming service's crash recovery relies on.
//
// IncrementalCounts is not safe for concurrent use; callers serialize
// appends against Source (the streaming service folds under its state lock).
type IncrementalCounts struct {
	n           int
	beta        int
	traditional bool
	coPairs     int64
	ones        []int32
	// nbr[v] maps each co-occurring neighbor of v to the pair's joint
	// infected count n11. Symmetric: nbr[a][b] == nbr[b][a].
	nbr []map[int32]int32
	// scratch holds the sorted infected list of the row being appended.
	scratch []int32
}

// NewIncrementalCounts returns empty counts over n nodes. traditional
// selects plain mutual information instead of infection MI, mirroring
// Options.TraditionalMI.
func NewIncrementalCounts(n int, traditional bool) *IncrementalCounts {
	if n < 0 {
		panic(fmt.Sprintf("core: negative node count %d", n))
	}
	return &IncrementalCounts{
		n:           n,
		traditional: traditional,
		ones:        make([]int32, n),
		nbr:         make([]map[int32]int32, n),
	}
}

// N returns the number of nodes.
func (c *IncrementalCounts) N() int { return c.n }

// Beta returns the number of observation rows folded in so far.
func (c *IncrementalCounts) Beta() int { return c.beta }

// CoPairs returns the number of unordered node pairs with at least one
// co-occurrence — the pairs Source materializes.
func (c *IncrementalCounts) CoPairs() int64 { return c.coPairs }

// Traditional reports whether the counts feed plain-MI values.
func (c *IncrementalCounts) Traditional() bool { return c.traditional }

// AppendRow folds one final-status vector, given as the list of infected
// node ids (any order). Out-of-range or duplicate ids reject the whole row
// with an error and leave the counts untouched, so a dirty input can never
// half-apply.
func (c *IncrementalCounts) AppendRow(infected []int) error {
	c.scratch = c.scratch[:0]
	for _, v := range infected {
		if v < 0 || v >= c.n {
			return fmt.Errorf("core: infected node %d out of range [0,%d)", v, c.n)
		}
		c.scratch = append(c.scratch, int32(v))
	}
	slices.Sort(c.scratch)
	for k := 1; k < len(c.scratch); k++ {
		if c.scratch[k] == c.scratch[k-1] {
			return fmt.Errorf("core: duplicate infected node %d in row", c.scratch[k])
		}
	}
	c.beta++
	for _, v := range c.scratch {
		c.ones[v]++
	}
	for ai, a := range c.scratch {
		for _, b := range c.scratch[ai+1:] {
			ma := c.nbr[a]
			if ma == nil {
				ma = make(map[int32]int32)
				c.nbr[a] = ma
			}
			mb := c.nbr[b]
			if mb == nil {
				mb = make(map[int32]int32)
				c.nbr[b] = mb
			}
			if _, seen := ma[b]; !seen {
				c.coPairs++
			}
			ma[b]++
			mb[a]++
		}
	}
	return nil
}

// Source assembles the counts into a SparseIMI — the same engine
// ComputeSparseIMI builds from a status matrix. Every field is a
// deterministic function of (β, ones, co-occurrence counts), and those are
// integer-exact here, so the assembled engine is indistinguishable from the
// batch-built one: identical At values, candidate sets, value pools, and
// therefore thresholds and inferred topologies. Cost is O(n + coPairs·log +
// C²) with C distinct infected counts — no pass over the observations.
func (c *IncrementalCounts) Source() *SparseIMI {
	s := &SparseIMI{
		n: c.n, beta: c.beta, traditional: c.traditional,
		mt:       cachedMITable(c.beta),
		rowStart: make([]int64, c.n+1),
	}
	if c.n == 0 {
		s.pool = (&poolBuilder{}).finish()
		return s
	}

	// Infected counts and count classes, exactly as the batch build derives
	// them from column popcounts.
	s.ones = append([]int32(nil), c.ones...)
	classIdx := make([]int32, c.beta+1)
	for v := 0; v < c.n; v++ {
		classIdx[s.ones[v]] = 1
	}
	for cv := 0; cv <= c.beta; cv++ {
		if classIdx[cv] != 0 {
			classIdx[cv] = int32(len(s.classVals) + 1)
			s.classVals = append(s.classVals, int32(cv))
		}
	}
	nClasses := len(s.classVals)
	s.classOf = make([]int32, c.n)
	s.classSize = make([]int64, nClasses)
	for v := range s.ones {
		k := classIdx[s.ones[v]] - 1
		s.classOf[v] = k
		s.classSize[k]++
	}
	s.classNodes = make([][]int32, nClasses)
	for k := range s.classNodes {
		s.classNodes[k] = make([]int32, 0, s.classSize[k])
	}
	for v := range s.ones {
		s.classNodes[s.classOf[v]] = append(s.classNodes[s.classOf[v]], int32(v))
	}

	// CSR rows straight from the co-occurrence maps: neighbors ascending,
	// values through the one shared pairValue expression.
	for v := 0; v < c.n; v++ {
		s.rowStart[v+1] = s.rowStart[v] + int64(len(c.nbr[v]))
	}
	s.nbr = make([]int32, s.rowStart[c.n])
	s.val = make([]float64, s.rowStart[c.n])
	s.coPairs = s.rowStart[c.n] / 2
	tally := newClassTally(nClasses)
	var b poolBuilder
	for v := 0; v < c.n; v++ {
		row := s.nbr[s.rowStart[v]:s.rowStart[v]]
		for j := range c.nbr[v] {
			row = append(row, j)
		}
		slices.Sort(row)
		ni := int(s.ones[v])
		base := s.rowStart[v]
		cv := s.classOf[v]
		for k, j := range row {
			val := pairValue(s.mt, c.traditional, c.beta, int(c.nbr[v][j]), ni, int(s.ones[j]))
			s.val[base+int64(k)] = val
			if int(j) > v {
				tally.add(cv, s.classOf[j])
				b.add(val, 1)
			}
		}
	}

	// Marginal runs for the never-co-occurring pairs, identical to the
	// batch assembly (same class walk, same closed-form n11 = 0 value).
	s.maxMarginal = make([]float64, nClasses)
	for a := range s.maxMarginal {
		s.maxMarginal[a] = math.Inf(-1)
	}
	for a := 0; a < nClasses; a++ {
		for cc := a; cc < nClasses; cc++ {
			var tot int64
			if a == cc {
				tot = s.classSize[a] * (s.classSize[a] - 1) / 2
			} else {
				tot = s.classSize[a] * s.classSize[cc]
			}
			zp := tot - tally.pairCount(a, cc)
			if zp <= 0 {
				continue
			}
			mv := pairValue(s.mt, c.traditional, c.beta, 0, int(s.classVals[a]), int(s.classVals[cc]))
			s.marginalVals = append(s.marginalVals, mv)
			s.marginalCnt = append(s.marginalCnt, zp)
			b.add(mv, zp)
			if mv > s.maxMarginal[a] {
				s.maxMarginal[a] = mv
			}
			if mv > s.maxMarginal[cc] {
				s.maxMarginal[cc] = mv
			}
		}
	}
	s.pool = b.finish()
	return s
}

// ActiveNodes returns, ascending, the nodes with at least one co-occurring
// partner — the only nodes whose candidate sets can be non-empty under a
// non-negative threshold, and therefore the only nodes the streaming
// service's recompute loop must search.
func (c *IncrementalCounts) ActiveNodes() []int {
	var out []int
	for v := 0; v < c.n; v++ {
		if len(c.nbr[v]) > 0 {
			out = append(out, v)
		}
	}
	return out
}

// Neighbors returns node v's co-occurring partners, ascending. The slice is
// freshly allocated.
func (c *IncrementalCounts) Neighbors(v int) []int {
	if v < 0 || v >= c.n {
		panic(fmt.Sprintf("core: node %d out of range [0,%d)", v, c.n))
	}
	out := make([]int, 0, len(c.nbr[v]))
	for j := range c.nbr[v] {
		out = append(out, int(j))
	}
	sort.Ints(out)
	return out
}

// InferFromCounts reconstructs the topology from incrementally maintained
// counts plus the status matrix of the same observations (the scorer of
// Eq. 13 needs the full columns; the pairwise stage does not rescan them).
// The result is bit-identical to InferContext over the same matrix at any
// worker count — the counts replace only the pairwise scan, the threshold
// and search stages are shared code. sm and counts must describe the same
// stream: equal n and β, and row r of sm must be the r-th appended row.
func InferFromCounts(ctx context.Context, sm *diffusion.StatusMatrix, counts *IncrementalCounts, opt Options) (*Result, error) {
	if counts.n != sm.N() || counts.beta != sm.Beta() {
		return nil, fmt.Errorf("core: counts describe %d nodes × %d rows, matrix is %d × %d",
			counts.n, counts.beta, sm.N(), sm.Beta())
	}
	rec := obs.From(ctx)
	span := rec.StartSpan("core/imi")
	imi := counts.Source()
	span.End()
	return InferFromSource(ctx, sm, imi, opt)
}

// InferFromSource is the lowest-level incremental entry point: it runs the
// threshold and parent-search stages over an already-assembled sparse
// engine. The streaming service assembles the source under its state lock
// (cheap) and then searches outside it (expensive) — the source and matrix
// are immutable snapshots, so concurrent folds cannot race the search.
func InferFromSource(ctx context.Context, sm *diffusion.StatusMatrix, src *SparseIMI, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	if err := validateOptions(sm, opt); err != nil {
		return nil, err
	}
	if src.n != sm.N() || src.beta != sm.Beta() {
		return nil, fmt.Errorf("core: source describes %d nodes × %d rows, matrix is %d × %d",
			src.n, src.beta, sm.N(), sm.Beta())
	}
	if src.traditional != opt.TraditionalMI {
		return nil, fmt.Errorf("core: source built with traditional=%v, options say %v", src.traditional, opt.TraditionalMI)
	}
	rec := obs.From(ctx)
	defer rec.StartSpan("core/infer").End()
	rec.Counter("core/sparse/rows").Add(int64(src.n))
	rec.Counter("core/sparse/pairs").Add(src.CoPairs())
	rec.Counter("core/sparse/pairs_skipped").Add(src.TotalPairs() - src.CoPairs())
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: IMI stage: %w", err)
	}
	return inferStages(ctx, sm, src, opt)
}
