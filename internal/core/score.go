// Package core implements TENDS, the paper's primary contribution: topology
// estimation of diffusion networks from final infection statuses only.
//
// The three pieces are (1) the decomposable scoring criterion of Eq. (12)/(13)
// balancing likelihood against statistical error, (2) the Theorem-2 upper
// bound on parent-set sizes, and (3) the infection-MI pruning heuristic of
// Section IV-B. Infer assembles them into Algorithm 1.
package core

import (
	"math"
	"math/bits"
	"slices"
	"sync"

	"tends/internal/diffusion"
)

// Scorer evaluates local scores g(v_i, F_i) against a fixed observation
// matrix. Columns are kept bit-packed so that the joint counting behind
// every score evaluation runs over machine words: for a parent set of size
// k, the instance count of each of the 2^k status combinations is a string
// of AND/ANDNOT + popcount operations. For large parent sets, where 2^k
// word scans would cost more than one pass over the observations, a
// per-process fallback path is used instead.
type Scorer struct {
	beta, n int
	words   int        // 64-bit words per column
	cols    [][]uint64 // packed status per node
	tail    uint64     // mask of valid bits in the last word
	deltas  []float64  // Theorem-2 δ_i per node
	ones    []int      // N₂ per node
	logs    []float64  // logs[k] = log₂(k) for k in [0, β+1]; logs[0] unused
	penalty PenaltyMode
	// maskPool recycles the per-evaluation mask buffer of packedCombos;
	// the scorer is shared by concurrent per-node searches, so the
	// scratch cannot live on the struct directly.
	maskPool sync.Pool
}

// PenaltyMode selects the statistical-error penalty of the local score.
type PenaltyMode int

const (
	// PenaltyPaper is Eq. (13): ½ Σ_j log₂(N_ij + 1) over the observed
	// parent-status combinations.
	PenaltyPaper PenaltyMode = iota
	// PenaltyBIC charges the classic ½·log₂(β) per free parameter (one
	// Bernoulli parameter per observed combination) — strictly harsher
	// than the paper's penalty once combinations fragment.
	PenaltyBIC
	// PenaltyNone scores by raw likelihood. Theorem 1 then guarantees the
	// maximizer is the complete graph; exists for the ablation that shows
	// why a penalty is required at all.
	PenaltyNone
)

// SetPenaltyMode switches the penalty used by subsequent score
// evaluations. The default is PenaltyPaper.
func (s *Scorer) SetPenaltyMode(m PenaltyMode) { s.penalty = m }

// NewScorer prepares a scorer for the given status matrix.
func NewScorer(m *diffusion.StatusMatrix) *Scorer {
	beta, n := m.Beta(), m.N()
	words := (beta + 63) / 64
	tail := ^uint64(0)
	if r := beta % 64; r != 0 {
		tail = (uint64(1) << r) - 1
	}
	s := &Scorer{
		beta:   beta,
		n:      n,
		words:  words,
		cols:   make([][]uint64, n),
		tail:   tail,
		deltas: make([]float64, n),
		ones:   make([]int, n),
		logs:   make([]float64, beta+2),
	}
	for k := 1; k <= beta+1; k++ {
		s.logs[k] = math.Log2(float64(k))
	}
	s.maskPool.New = func() any {
		buf := make([]uint64, s.words)
		return &buf
	}
	for v := 0; v < n; v++ {
		col := make([]uint64, words)
		copy(col, m.Column(v))
		if words > 0 {
			col[words-1] &= tail
		}
		s.cols[v] = col
		s.ones[v] = m.CountInfected(v)
		s.deltas[v] = delta(beta, s.ones[v])
	}
	return s
}

// Beta returns the number of observed diffusion processes.
func (s *Scorer) Beta() int { return s.beta }

// N returns the number of nodes.
func (s *Scorer) N() int { return s.n }

// Delta returns δ_i of Theorem 2 for node i:
//
//	δ_i = 2·N₁·log₂(β/N₁) + 2·N₂·log₂(β/N₂) + log₂(β+1)
//
// with the 0·log(·) = 0 convention when a status never occurs.
func (s *Scorer) Delta(i int) float64 { return s.deltas[i] }

func delta(beta, n2 int) float64 {
	n1 := beta - n2
	d := math.Log2(float64(beta) + 1)
	if n1 > 0 {
		d += 2 * float64(n1) * math.Log2(float64(beta)/float64(n1))
	}
	if n2 > 0 {
		d += 2 * float64(n2) * math.Log2(float64(beta)/float64(n2))
	}
	return d
}

// ScoreParts holds the components of a local score evaluation.
type ScoreParts struct {
	LogLikelihood float64 // log₂ L(v_i, F_i), Eq. (3)
	Penalty       float64 // ½ Σ_j log₂(N_ij + 1)
	Observed      int     // combinations with at least one instance
	Phi           float64 // φ_F: 2^|F| minus Observed
}

// Score returns g = LogLikelihood - Penalty.
func (p ScoreParts) Score() float64 { return p.LogLikelihood - p.Penalty }

// addCombo folds one combination's (N_ij1, N_ij2) into the running parts.
// This is the definitional form; the scoring hot paths use the scorer's
// table-backed equivalent below, and tests check the two agree.
func (p *ScoreParts) addCombo(k0, k1 int) {
	nij := k0 + k1
	if nij == 0 {
		return
	}
	if k0 > 0 {
		p.LogLikelihood += float64(k0) * math.Log2(float64(k0)/float64(nij))
	}
	if k1 > 0 {
		p.LogLikelihood += float64(k1) * math.Log2(float64(k1)/float64(nij))
	}
	p.Penalty += 0.5 * math.Log2(float64(nij)+1)
	p.Observed++
}

// addCombo is the table-backed fold used by every scoring path: all counts
// are integers in [0, β], so k·log₂(k/n) collapses to k·(logs[k] − logs[n])
// and the penalty's log₂(n+1) to a lookup. The Log2 calls it replaces
// dominate combination enumeration once masks are shared; the identity
// changes rounding order only (~1 ulp vs ScoreParts.addCombo).
func (s *Scorer) addCombo(parts *ScoreParts, k0, k1 int) {
	nij := k0 + k1
	if nij == 0 {
		return
	}
	ln := s.logs[nij]
	if k0 > 0 {
		parts.LogLikelihood += float64(k0) * (s.logs[k0] - ln)
	}
	if k1 > 0 {
		parts.LogLikelihood += float64(k1) * (s.logs[k1] - ln)
	}
	parts.Penalty += 0.5 * s.logs[nij+1]
	parts.Observed++
}

// LocalScoreParts evaluates the local score components of parent set
// parents for node child. An empty parent set reproduces Eq. (18).
func (s *Scorer) LocalScoreParts(child int, parents []int) ScoreParts {
	k := len(parents)
	if k > 63 {
		panic("core: parent sets beyond 63 nodes are not representable")
	}
	var parts ScoreParts
	// Packed path: 2^k masked popcount scans. Worth it while the total
	// word traffic 2^k·k·words stays below the per-process fallback's
	// β·k steps with its hashing overhead.
	if s.packedWorthwhile(k) {
		s.packedCombos(child, parents, &parts)
	} else {
		s.genericCombos(child, parents, &parts)
	}
	s.finishParts(k, &parts)
	return parts
}

// packedWorthwhile reports whether the 2^k masked-popcount path beats the
// per-process fallback for a parent set of size k.
func (s *Scorer) packedWorthwhile(k int) bool {
	return k <= 2 || (1<<uint(k))*s.words <= s.beta
}

// finishParts fills the derived fields of a score evaluation: φ_F and the
// penalty-mode override.
func (s *Scorer) finishParts(k int, parts *ScoreParts) {
	parts.Phi = math.Exp2(float64(k)) - float64(parts.Observed)
	switch s.penalty {
	case PenaltyBIC:
		parts.Penalty = 0.5 * math.Log2(float64(s.beta)) * float64(parts.Observed)
	case PenaltyNone:
		parts.Penalty = 0
	}
}

// packedCombos enumerates all 2^k parent-status combinations as bit masks.
func (s *Scorer) packedCombos(child int, parents []int, parts *ScoreParts) {
	k := len(parents)
	childCol := s.cols[child]
	if k == 0 {
		n1 := s.beta - s.ones[child]
		s.addCombo(parts, n1, s.ones[child])
		return
	}
	bufp := s.maskPool.Get().(*[]uint64)
	defer s.maskPool.Put(bufp)
	mask := *bufp
	for combo := 0; combo < 1<<uint(k); combo++ {
		for w := 0; w < s.words; w++ {
			mask[w] = ^uint64(0)
		}
		mask[s.words-1] = s.tail
		for bi, p := range parents {
			col := s.cols[p]
			if combo&(1<<uint(bi)) != 0 {
				for w := 0; w < s.words; w++ {
					mask[w] &= col[w]
				}
			} else {
				for w := 0; w < s.words; w++ {
					mask[w] &^= col[w]
				}
			}
		}
		nij, k1 := 0, 0
		for w := 0; w < s.words; w++ {
			nij += bits.OnesCount64(mask[w])
			k1 += bits.OnesCount64(mask[w] & childCol[w])
		}
		s.addCombo(parts, nij-k1, k1)
	}
}

// genericCombos walks the observations once, bucketing processes by their
// parent-status key.
func (s *Scorer) genericCombos(child int, parents []int, parts *ScoreParts) {
	counts := make(map[uint64][2]int)
	cols := make([][]uint64, len(parents))
	for i, p := range parents {
		cols[i] = s.cols[p]
	}
	childCol := s.cols[child]
	for p := 0; p < s.beta; p++ {
		w, b := p/64, uint(p%64)
		var key uint64
		for i := range cols {
			if cols[i][w]&(1<<b) != 0 {
				key |= 1 << uint(i)
			}
		}
		cc := counts[key]
		if childCol[w]&(1<<b) != 0 {
			cc[1]++
		} else {
			cc[0]++
		}
		counts[key] = cc
	}
	// Accumulate in sorted-key order: addCombo sums floats, and map
	// iteration order would otherwise make the result vary run to run.
	keys := make([]uint64, 0, len(counts))
	for key := range counts {
		keys = append(keys, key)
	}
	slices.Sort(keys)
	for _, key := range keys {
		cc := counts[key]
		s.addCombo(parts, cc[0], cc[1])
	}
}

// comboScratch is the reusable mask tree of a combination-enumeration
// DFS. Level d stores the 2^d parent-status masks of the current depth-d
// combination, flat and combo-major, so extending the DFS by one candidate
// derives level d from level d-1 with a single AND/ANDNOT per mask instead
// of rebuilding every mask from all d columns per combination.
type comboScratch struct {
	levels [][]uint64
}

// newComboScratch sizes a scratch for combinations of up to maxSize
// parents. Depths past the packed/generic crossover are never
// materialized — the enumeration scores those via the per-process
// fallback, which needs no masks — so the total footprint stays bounded
// by O(maxSize·β) bits.
func (s *Scorer) newComboScratch(maxSize int) *comboScratch {
	lim := 0
	for lim < maxSize && s.packedWorthwhile(lim+1) {
		lim++
	}
	sc := &comboScratch{levels: make([][]uint64, lim+1)}
	for d := 0; d <= lim; d++ {
		sc.levels[d] = make([]uint64, (1<<uint(d))*s.words)
	}
	// Level 0: the single all-processes mask.
	lvl0 := sc.levels[0]
	for w := range lvl0 {
		lvl0[w] = ^uint64(0)
	}
	if s.words > 0 {
		lvl0[s.words-1] = s.tail
	}
	return sc
}

// packedLimit returns the deepest level the scratch materializes.
func (sc *comboScratch) packedLimit() int { return len(sc.levels) - 1 }

// extend derives level d's masks from level d-1 by splitting every mask on
// the status column of the newly added parent. The new parent occupies the
// high combo-index bit (clear half first, set half second), which is
// exactly packedCombos' combo numbering — so scores folded from a level
// match packedCombos bit for bit, float summation order included.
func (sc *comboScratch) extend(s *Scorer, d, parent int) {
	src := sc.levels[d-1]
	dst := sc.levels[d]
	col := s.cols[parent]
	words := s.words
	half := (1 << uint(d-1)) * words
	for i := 0; i < 1<<uint(d-1); i++ {
		sm := src[i*words : (i+1)*words]
		d0 := dst[i*words : (i+1)*words]
		d1 := dst[half+i*words : half+(i+1)*words]
		for w := 0; w < words; w++ {
			d0[w] = sm[w] &^ col[w]
			d1[w] = sm[w] & col[w]
		}
	}
}

// scoreLevel folds the 2^k masks of a scratch level into the score parts
// for child, equivalent to LocalScoreParts on the parent set the level
// encodes but without rebuilding any mask.
func (s *Scorer) scoreLevel(child int, level []uint64, k int) ScoreParts {
	var parts ScoreParts
	childCol := s.cols[child]
	words := s.words
	for c := 0; c < 1<<uint(k); c++ {
		mask := level[c*words : (c+1)*words : (c+1)*words]
		nij, k1 := 0, 0
		for w := 0; w < words; w++ {
			nij += bits.OnesCount64(mask[w])
			k1 += bits.OnesCount64(mask[w] & childCol[w])
		}
		s.addCombo(&parts, nij-k1, k1)
	}
	s.finishParts(k, &parts)
	return parts
}

// LocalScore is Eq. (13): g(v_i, F_i).
func (s *Scorer) LocalScore(child int, parents []int) float64 {
	return s.LocalScoreParts(child, parents).Score()
}

// BoundHolds reports the Theorem-2 condition |F| ≤ log₂(φ_F + δ_i) for a
// parent set of the given size and φ value, for child node i.
func (s *Scorer) BoundHolds(i int, setSize int, phi float64) bool {
	if setSize == 0 {
		return true
	}
	arg := phi + s.deltas[i]
	if arg <= 0 {
		return false
	}
	return float64(setSize) <= math.Log2(arg)
}

// TotalScore is the decomposable criterion g(T) of Eq. (12) for a full
// topology expressed as parent sets per node.
func (s *Scorer) TotalScore(parents [][]int) float64 {
	var total float64
	for i := 0; i < s.n; i++ {
		total += s.LocalScore(i, parents[i])
	}
	return total
}
