package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"tends/internal/diffusion"
	"tends/internal/obs"
)

// sparseRandomStatus builds a β×n matrix where each cell is infected with
// probability density — the workload family for the dense/sparse parity
// property tests.
func sparseRandomStatus(n, beta int, density float64, seed int64) *diffusion.StatusMatrix {
	rng := rand.New(rand.NewSource(seed))
	sm := diffusion.NewStatusMatrix(beta, n)
	for p := 0; p < beta; p++ {
		for v := 0; v < n; v++ {
			if rng.Float64() < density {
				sm.Set(p, v, true)
			}
		}
	}
	return sm
}

// TestSparseDenseValuesBitIdentical checks At agreement on EVERY pair (not
// just co-occurring ones) across random shapes, densities, both MI modes,
// and worker counts — the tentpole's bit-identity contract.
func TestSparseDenseValuesBitIdentical(t *testing.T) {
	cases := []struct {
		n, beta int
		density float64
	}{
		{12, 7, 0.05},
		{25, 40, 0.15},
		{40, 64, 0.3},
		{17, 130, 0.5},
		{30, 96, 0.02}, // very sparse: most pairs never co-occur
		{8, 16, 0.9},   // saturated: almost everything co-occurs
	}
	for ci, tc := range cases {
		for _, traditional := range []bool{false, true} {
			for _, workers := range []int{1, 4} {
				sm := sparseRandomStatus(tc.n, tc.beta, tc.density, int64(100+ci))
				dense := ComputeIMIWorkers(sm, traditional, workers)
				sp, err := ComputeSparseIMIContext(context.Background(), sm, traditional, workers)
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < tc.n; i++ {
					for j := 0; j < tc.n; j++ {
						if i == j {
							continue
						}
						dv, sv := dense.At(i, j), sp.At(i, j)
						if dv != sv && !(math.IsNaN(dv) && math.IsNaN(sv)) {
							t.Fatalf("case %d (trad=%v workers=%d): At(%d,%d) dense=%v sparse=%v",
								ci, traditional, workers, i, j, dv, sv)
						}
					}
				}
				if got, want := sp.PairValues(), dense.PairValues(); len(got) == len(want) {
					for k := range got {
						if got[k] != want[k] {
							t.Fatalf("case %d: PairValues[%d] sparse=%v dense=%v", ci, k, got[k], want[k])
						}
					}
				} else {
					t.Fatalf("case %d: PairValues lengths %d vs %d", ci, len(got), len(want))
				}
			}
		}
	}
}

func equalIntSlices(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSparseDenseCandidatesAndPools checks that the τ-selected candidate
// sets agree at the auto-selected thresholds and a spread of fixed ones
// (including negative, which exercises the sparse marginal-class path), and
// that the two engines reduce to bit-identical value pools.
func TestSparseDenseCandidatesAndPools(t *testing.T) {
	for ci, tc := range []struct {
		n, beta int
		density float64
	}{
		{20, 30, 0.1},
		{35, 50, 0.25},
		{15, 80, 0.04},
	} {
		for _, traditional := range []bool{false, true} {
			sm := sparseRandomStatus(tc.n, tc.beta, tc.density, int64(200+ci))
			dense := ComputeIMIWorkers(sm, traditional, 2)
			sp := ComputeSparseIMI(sm, traditional)

			dp, spp := dense.valuePool(), sp.valuePool()
			if dp.total != spp.total || dp.zeros != spp.zeros || dp.maxAll != spp.maxAll {
				t.Fatalf("case %d trad=%v: pool scalars differ: dense{total=%d zeros=%d max=%v} sparse{total=%d zeros=%d max=%v}",
					ci, traditional, dp.total, dp.zeros, dp.maxAll, spp.total, spp.zeros, spp.maxAll)
			}
			if len(dp.pos) != len(spp.pos) {
				t.Fatalf("case %d trad=%v: pool run counts differ: %d vs %d", ci, traditional, len(dp.pos), len(spp.pos))
			}
			for r := range dp.pos {
				if dp.pos[r] != spp.pos[r] || dp.posCnt[r] != spp.posCnt[r] {
					t.Fatalf("case %d trad=%v: pool run %d differs: (%v,%d) vs (%v,%d)",
						ci, traditional, r, dp.pos[r], dp.posCnt[r], spp.pos[r], spp.posCnt[r])
				}
			}

			taus := []float64{
				dp.twoMeansTau(),
				dp.fdrTau(tc.beta, 0.2),
				0, 0.001, -0.05, -1, 0.5,
			}
			for _, tau := range taus {
				for i := 0; i < tc.n; i++ {
					dc := dense.Candidates(i, tau)
					sc := sp.Candidates(i, tau)
					if !equalIntSlices(dc, sc) {
						t.Fatalf("case %d trad=%v: Candidates(%d, %v) dense=%v sparse=%v",
							ci, traditional, i, tau, dc, sc)
					}
				}
			}

			for i := 0; i < tc.n; i++ {
				if d, s := dense.nodePool(i).twoMeansTau(), sp.nodePool(i).twoMeansTau(); d != s {
					t.Fatalf("case %d trad=%v: node %d per-node tau dense=%v sparse=%v", ci, traditional, i, d, s)
				}
			}
		}
	}
}

// TestSparseDenseInferIdentical runs the full pipeline both ways across
// threshold methods and worker counts and requires identical graphs,
// thresholds, and scores.
func TestSparseDenseInferIdentical(t *testing.T) {
	sm := sparseRandomStatus(30, 60, 0.12, 42)
	methods := []ThresholdMethod{ThresholdAuto, ThresholdKMeans, ThresholdKMeansPerNode, ThresholdFDR}
	for _, method := range methods {
		for _, workers := range []int{1, 4} {
			base := Options{ThresholdMethod: method, Workers: workers}
			sparse := base
			sparse.Sparse = true
			dr, err := Infer(sm, base)
			if err != nil {
				t.Fatalf("dense method=%d: %v", method, err)
			}
			sr, err := Infer(sm, sparse)
			if err != nil {
				t.Fatalf("sparse method=%d: %v", method, err)
			}
			if !dr.Graph.Equal(sr.Graph) {
				t.Fatalf("method=%d workers=%d: graphs differ", method, workers)
			}
			if dr.Threshold != sr.Threshold || dr.AutoTau != sr.AutoTau {
				t.Fatalf("method=%d: thresholds differ: dense (%v,%v) sparse (%v,%v)",
					method, dr.Threshold, dr.AutoTau, sr.Threshold, sr.AutoTau)
			}
			if dr.Score != sr.Score {
				t.Fatalf("method=%d: scores differ: %v vs %v", method, dr.Score, sr.Score)
			}
		}
	}
}

// TestSparseShardMergeIdentical splits the search across k shards and
// checks the union of parent sets reproduces the unsharded topology for
// k ∈ {1, 2, 4}, dense and sparse.
func TestSparseShardMergeIdentical(t *testing.T) {
	sm := sparseRandomStatus(26, 48, 0.15, 7)
	for _, sparse := range []bool{false, true} {
		full, err := Infer(sm, Options{Sparse: sparse})
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{1, 2, 4} {
			merged := make([][]int, sm.N())
			for shard := 0; shard < k; shard++ {
				res, err := Infer(sm, Options{Sparse: sparse, ShardIndex: shard, ShardCount: k})
				if err != nil {
					t.Fatalf("shard %d/%d: %v", shard, k, err)
				}
				if res.Threshold != full.Threshold {
					t.Fatalf("shard %d/%d: threshold %v != %v", shard, k, res.Threshold, full.Threshold)
				}
				for i, parents := range res.Parents {
					if i%k != shard {
						if len(parents) != 0 {
							t.Fatalf("shard %d/%d: node %d outside shard has parents %v", shard, k, i, parents)
						}
						continue
					}
					merged[i] = parents
				}
			}
			for i := range merged {
				if !equalIntSlices(merged[i], full.Parents[i]) {
					t.Fatalf("sparse=%v k=%d: node %d parents %v != %v", sparse, k, i, merged[i], full.Parents[i])
				}
			}
		}
	}
}

// TestShardOptionsValidation pins the Options validation for sharding.
func TestShardOptionsValidation(t *testing.T) {
	sm := sparseRandomStatus(6, 8, 0.3, 1)
	for _, opt := range []Options{
		{ShardCount: -1},
		{ShardCount: 2, ShardIndex: 2},
		{ShardCount: 2, ShardIndex: -1},
		{ShardIndex: 1},
	} {
		if _, err := Infer(sm, opt); err == nil {
			t.Fatalf("Infer(%+v) succeeded, want error", opt)
		}
	}
	if _, err := Infer(sm, Options{ShardCount: 1, ShardIndex: 0}); err != nil {
		t.Fatalf("ShardCount=1 should be valid: %v", err)
	}
}

// TestSparseFixedAndScaledThresholds covers the fixed/scaled threshold
// paths through the sparse engine.
func TestSparseFixedAndScaledThresholds(t *testing.T) {
	sm := sparseRandomStatus(18, 40, 0.2, 11)
	fixed := 0.01
	for _, opt := range []Options{
		{FixedThreshold: &fixed},
		{ThresholdScale: 2},
		{TraditionalMI: true},
	} {
		sparse := opt
		sparse.Sparse = true
		dr, err := Infer(sm, opt)
		if err != nil {
			t.Fatal(err)
		}
		sr, err := Infer(sm, sparse)
		if err != nil {
			t.Fatal(err)
		}
		if !dr.Graph.Equal(sr.Graph) {
			t.Fatalf("opts %+v: graphs differ", opt)
		}
	}
	// Negative fixed threshold: every pair (including never-co-occurring
	// ones, whose IMI is ≤ 0) can become a candidate; the sparse engine
	// must fall back to its marginal-class enumeration.
	neg := -10.0
	dr, err := Infer(sm, Options{FixedThreshold: &neg, MaxCandidates: 4})
	if err != nil {
		t.Fatal(err)
	}
	sr, err := Infer(sm, Options{FixedThreshold: &neg, MaxCandidates: 4, Sparse: true})
	if err != nil {
		t.Fatal(err)
	}
	if !dr.Graph.Equal(sr.Graph) {
		t.Fatal("negative fixed threshold: graphs differ")
	}
}

// TestSparseObsCounters checks the engine's savings are observable.
func TestSparseObsCounters(t *testing.T) {
	sm := sparseRandomStatus(20, 30, 0.1, 3)
	sp := ComputeSparseIMI(sm, false)
	if sp.TotalPairs() != 20*19/2 {
		t.Fatalf("TotalPairs = %d", sp.TotalPairs())
	}
	if sp.CoPairs() <= 0 || sp.CoPairs() > sp.TotalPairs() {
		t.Fatalf("CoPairs = %d out of range", sp.CoPairs())
	}
	// Count co-occurring pairs by brute force.
	var want int64
	for i := 0; i < 20; i++ {
		for j := i + 1; j < 20; j++ {
			if c := sm.JointCounts(i, j); c[1][1] > 0 {
				want++
			}
		}
	}
	if sp.CoPairs() != want {
		t.Fatalf("CoPairs = %d, want %d", sp.CoPairs(), want)
	}
}

// TestSparseEmptyAndDegenerate covers n=0/1 and all-zero observations.
func TestSparseEmptyAndDegenerate(t *testing.T) {
	if sp := ComputeSparseIMI(diffusion.NewStatusMatrix(4, 0), false); sp.N() != 0 {
		t.Fatal("n=0")
	}
	sp := ComputeSparseIMI(diffusion.NewStatusMatrix(4, 1), false)
	if sp.Candidates(0, 0) != nil {
		t.Fatal("single node should have no candidates")
	}
	// All-zero statuses: every value is 0, nothing co-occurs.
	sm := diffusion.NewStatusMatrix(5, 6)
	sp = ComputeSparseIMI(sm, false)
	dense := ComputeIMI(sm, false)
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			if sp.At(i, j) != dense.At(i, j) {
				t.Fatalf("all-zero At(%d,%d): %v vs %v", i, j, sp.At(i, j), dense.At(i, j))
			}
		}
	}
	if sp.CoPairs() != 0 {
		t.Fatalf("all-zero CoPairs = %d", sp.CoPairs())
	}
}

// TestSparseRecordsTelemetry checks the sparse engine's observability
// contract: row/pair/skip counters that account for the full triangle, and
// the shared kernel tile counter.
func TestSparseRecordsTelemetry(t *testing.T) {
	sm := sparseRandomStatus(24, 40, 0.1, 8)
	rec := obs.New()
	ctx := obs.With(context.Background(), rec)
	sp, err := ComputeSparseIMIContext(ctx, sm, false, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := rec.Snapshot()
	if got := s.Counters["core/sparse/rows"]; got != 24 {
		t.Fatalf("core/sparse/rows = %d, want 24", got)
	}
	pairs, skipped := s.Counters["core/sparse/pairs"], s.Counters["core/sparse/pairs_skipped"]
	if pairs != sp.CoPairs() {
		t.Fatalf("core/sparse/pairs = %d, want %d", pairs, sp.CoPairs())
	}
	if pairs+skipped != sp.TotalPairs() {
		t.Fatalf("pairs %d + skipped %d != total %d", pairs, skipped, sp.TotalPairs())
	}
	if s.Counters["core/kernel/tiles"] <= 0 {
		t.Fatal("no kernel tiles recorded")
	}
}
