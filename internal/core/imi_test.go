package core

import (
	"math"
	"testing"

	"tends/internal/diffusion"
	"tends/internal/stats"
)

func TestTriIndex(t *testing.T) {
	n := 5
	seen := make(map[int]bool)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			idx := triIndex(n, i, j)
			if idx < 0 || idx >= n*(n-1)/2 {
				t.Fatalf("triIndex(%d,%d) = %d out of range", i, j, idx)
			}
			if seen[idx] {
				t.Fatalf("triIndex collision at (%d,%d)", i, j)
			}
			seen[idx] = true
			if triIndex(n, j, i) != idx {
				t.Fatalf("triIndex not symmetric at (%d,%d)", i, j)
			}
		}
	}
	if len(seen) != n*(n-1)/2 {
		t.Fatalf("covered %d indices, want %d", len(seen), n*(n-1)/2)
	}
}

func TestComputeIMIMatchesStats(t *testing.T) {
	m := randomStatus(50, 6, 21)
	imi := ComputeIMI(m, false)
	mi := ComputeIMI(m, true)
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			var c stats.Contingency2x2
			c.N = m.JointCounts(i, j)
			if got, want := imi.At(i, j), c.InfectionMI(); math.Abs(got-want) > 1e-12 {
				t.Fatalf("IMI(%d,%d) = %v, want %v", i, j, got, want)
			}
			if got, want := mi.At(i, j), c.MutualInformation(); math.Abs(got-want) > 1e-12 {
				t.Fatalf("MI(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestIMIAtPanicsOnDiagonal(t *testing.T) {
	imi := ComputeIMI(randomStatus(10, 3, 1), false)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for At(i,i)")
		}
	}()
	imi.At(2, 2)
}

func TestCandidates(t *testing.T) {
	// Node 1 copies node 0; node 2 is independent noise.
	m := diffusion.NewStatusMatrix(200, 3)
	for p := 0; p < 200; p++ {
		v := p%2 == 0
		m.Set(p, 0, v)
		m.Set(p, 1, v)
		m.Set(p, 2, p%3 == 0)
	}
	imi := ComputeIMI(m, false)
	cands := imi.Candidates(0, 0.1)
	if len(cands) != 1 || cands[0] != 1 {
		t.Fatalf("Candidates(0) = %v, want [1]", cands)
	}
	// With a sky-high threshold nothing survives.
	if c := imi.Candidates(0, 10); len(c) != 0 {
		t.Fatalf("Candidates with huge tau = %v, want empty", c)
	}
}

func TestSelectThresholdSeparates(t *testing.T) {
	// Three tight pairs plus noise nodes: the K-means threshold should sit
	// below the pair IMIs and above (or at) the noise IMIs.
	m := diffusion.NewStatusMatrix(400, 8)
	rng := newTestRand(31)
	for p := 0; p < 400; p++ {
		for pair := 0; pair < 3; pair++ {
			v := rng.Intn(2) == 0
			m.Set(p, 2*pair, v)
			w := v
			if rng.Float64() < 0.1 {
				w = !w
			}
			m.Set(p, 2*pair+1, w)
		}
		m.Set(p, 6, rng.Intn(2) == 0)
		m.Set(p, 7, rng.Intn(2) == 0)
	}
	imi := ComputeIMI(m, false)
	tau := SelectThreshold(imi)
	for pair := 0; pair < 3; pair++ {
		if v := imi.At(2*pair, 2*pair+1); v <= tau {
			t.Fatalf("pair %d IMI %v not above threshold %v", pair, v, tau)
		}
	}
	if v := imi.At(6, 7); v > tau {
		t.Fatalf("noise IMI %v above threshold %v", v, tau)
	}
}
