package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tends/internal/diffusion"
)

// randomStatus builds a random beta×n status matrix from a seed.
func randomStatus(beta, n int, seed int64) *diffusion.StatusMatrix {
	rng := rand.New(rand.NewSource(seed))
	m := diffusion.NewStatusMatrix(beta, n)
	for p := 0; p < beta; p++ {
		for v := 0; v < n; v++ {
			m.Set(p, v, rng.Intn(2) == 1)
		}
	}
	return m
}

// Lemma 1: (b/a)^b <= (b1/a1)^b1 * (b2/a2)^b2 for non-negative integers
// with a=a1+a2, b=b1+b2. Verified in log space with the 0·log0 convention.
func TestLemma1Property(t *testing.T) {
	logTerm := func(b, a int) float64 {
		if b == 0 {
			return 0
		}
		return float64(b) * math.Log2(float64(b)/float64(a))
	}
	f := func(a1Raw, a2Raw, b1Raw, b2Raw uint8) bool {
		a1, a2 := int(a1Raw%50)+1, int(a2Raw%50)+1
		b1, b2 := int(b1Raw)%(a1+1), int(b2Raw)%(a2+1)
		lhs := logTerm(b1+b2, a1+a2)
		rhs := logTerm(b1, a1) + logTerm(b2, a2)
		return lhs <= rhs+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Theorem 1: adding any node to a parent set never decreases the
// log-likelihood part of the local score.
func TestTheorem1LikelihoodMonotone(t *testing.T) {
	f := func(seed int64, childRaw, extraRaw uint8) bool {
		const n = 6
		m := randomStatus(40, n, seed)
		s := NewScorer(m)
		child := int(childRaw) % n
		extra := int(extraRaw) % n
		if extra == child {
			extra = (extra + 1) % n
		}
		base := []int{(child + 1) % n}
		if base[0] == extra {
			base[0] = (extra + 1) % n
			if base[0] == child {
				base[0] = (base[0] + 1) % n
			}
		}
		withExtra := append(append([]int(nil), base...), extra)
		l0 := s.LocalScoreParts(child, base).LogLikelihood
		l1 := s.LocalScoreParts(child, withExtra).LogLikelihood
		return l1 >= l0-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// The empty-set score must match Eq. (18) exactly.
func TestEmptySetScoreEq18(t *testing.T) {
	m := randomStatus(100, 3, 3)
	s := NewScorer(m)
	for child := 0; child < 3; child++ {
		n2 := 0
		for p := 0; p < 100; p++ {
			if m.Get(p, child) {
				n2++
			}
		}
		n1 := 100 - n2
		want := -0.5 * math.Log2(101)
		if n1 > 0 {
			want += float64(n1) * math.Log2(float64(n1)/100)
		}
		if n2 > 0 {
			want += float64(n2) * math.Log2(float64(n2)/100)
		}
		if got := s.LocalScore(child, nil); math.Abs(got-want) > 1e-9 {
			t.Fatalf("child %d: empty score = %v, want %v", child, got, want)
		}
	}
}

func TestDeltaFormula(t *testing.T) {
	// β=150, N2=75: δ = 2·75·1 + 2·75·1 + log2(151)
	want := 300 + math.Log2(151)
	if got := delta(150, 75); math.Abs(got-want) > 1e-9 {
		t.Fatalf("delta(150,75) = %v, want %v", got, want)
	}
	// Degenerate columns: only the log term remains.
	if got := delta(150, 0); math.Abs(got-math.Log2(151)) > 1e-9 {
		t.Fatalf("delta(150,0) = %v, want %v", got, math.Log2(151))
	}
	if got := delta(150, 150); math.Abs(got-math.Log2(151)) > 1e-9 {
		t.Fatalf("delta(150,150) = %v, want %v", got, math.Log2(151))
	}
}

// naiveScoreParts recomputes the local score components directly from the
// definition, bucketing processes by parent-status combination.
func naiveScoreParts(m *diffusion.StatusMatrix, child int, parents []int) ScoreParts {
	counts := map[uint64][2]int{}
	for p := 0; p < m.Beta(); p++ {
		var key uint64
		for bi, par := range parents {
			if m.Get(p, par) {
				key |= 1 << uint(bi)
			}
		}
		cc := counts[key]
		if m.Get(p, child) {
			cc[1]++
		} else {
			cc[0]++
		}
		counts[key] = cc
	}
	var parts ScoreParts
	for _, cc := range counts {
		parts.addCombo(cc[0], cc[1])
	}
	parts.Phi = math.Exp2(float64(len(parents))) - float64(parts.Observed)
	return parts
}

// Both scoring paths (packed masks for small parent sets, per-process
// bucketing for large ones) must agree with the naive definition.
func TestScorePartsMatchNaive(t *testing.T) {
	f := func(seed int64, betaRaw uint8, parentCount uint8) bool {
		const n = 9
		beta := int(betaRaw%120) + 1
		m := randomStatus(beta, n, seed)
		s := NewScorer(m)
		k := int(parentCount % 8)
		parents := make([]int, 0, k)
		for j := 1; j <= k; j++ {
			parents = append(parents, j)
		}
		got := s.LocalScoreParts(0, parents)
		want := naiveScoreParts(m, 0, parents)
		return math.Abs(got.LogLikelihood-want.LogLikelihood) < 1e-9 &&
			math.Abs(got.Penalty-want.Penalty) < 1e-9 &&
			got.Observed == want.Observed &&
			got.Phi == want.Phi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Force both internal paths explicitly across the word boundary (beta > 64)
// and check they agree with each other.
func TestScorePathsAgreeAcrossWordBoundary(t *testing.T) {
	for _, beta := range []int{63, 64, 65, 128, 130} {
		m := randomStatus(beta, 10, int64(beta))
		s := NewScorer(m)
		for k := 0; k <= 6; k++ {
			parents := make([]int, 0, k)
			for j := 1; j <= k; j++ {
				parents = append(parents, j)
			}
			var packed, generic ScoreParts
			s.packedCombos(0, parents, &packed)
			s.genericCombos(0, parents, &generic)
			if packed.Observed != generic.Observed ||
				math.Abs(packed.LogLikelihood-generic.LogLikelihood) > 1e-9 ||
				math.Abs(packed.Penalty-generic.Penalty) > 1e-9 {
				t.Fatalf("beta=%d k=%d: packed=%+v generic=%+v", beta, k, packed, generic)
			}
		}
	}
}

// Decomposability: g(T) equals the sum of local scores.
func TestTotalScoreDecomposable(t *testing.T) {
	m := randomStatus(60, 5, 7)
	s := NewScorer(m)
	parents := [][]int{{1}, {0, 2}, nil, {4}, {0}}
	var sum float64
	for i, f := range parents {
		sum += s.LocalScore(i, f)
	}
	if got := s.TotalScore(parents); math.Abs(got-sum) > 1e-9 {
		t.Fatalf("TotalScore = %v, want %v", got, sum)
	}
}

// Penalty controls overfitting in the regime the algorithm actually
// explores: adding an independent (bogus) parent to a small set loses to
// the smaller set, because the likelihood gain is negligible while the
// combination count — and so the penalty — doubles.
func TestPenaltyControlsOverfit(t *testing.T) {
	// All columns independent coin flips: no real parents exist.
	m := randomStatus(200, 8, 9)
	s := NewScorer(m)
	child := 0
	empty := s.LocalScore(child, nil)
	one := s.LocalScore(child, []int{1})
	two := s.LocalScore(child, []int{1, 2})
	if one >= empty {
		t.Fatalf("1 bogus parent scored %v >= empty %v; penalty too weak", one, empty)
	}
	if two >= one {
		t.Fatalf("2 bogus parents scored %v >= one %v; penalty too weak", two, one)
	}
}

// In the memorization regime (2^|F| comparable to β) the likelihood can
// outrun the per-combination penalty; Theorem 2's bound plus IMI pruning —
// not the penalty alone — are what keep inference sparse there. Document
// that end to end: Infer on pure noise stays near-empty even though a huge
// bogus parent set can out-score the empty set locally.
func TestOverfitRegimeHandledByPruning(t *testing.T) {
	m := randomStatus(80, 8, 9)
	s := NewScorer(m)
	if full := s.LocalScore(0, []int{1, 2, 3, 4, 5, 6, 7}); full <= s.LocalScore(0, nil) {
		t.Skip("data did not exhibit the memorization regime; nothing to document")
	}
	res, err := Infer(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.NumEdges() > 4 {
		t.Fatalf("Infer on pure noise produced %d edges; pruning failed to contain overfitting", res.Graph.NumEdges())
	}
}

func TestBoundHolds(t *testing.T) {
	m := randomStatus(150, 4, 11)
	s := NewScorer(m)
	if !s.BoundHolds(0, 0, 0) {
		t.Fatal("empty set must always satisfy the bound")
	}
	// δ for a random balanced column is ≈ 300; a single parent with φ=0
	// needs 1 <= log2(300) ≈ 8.2 — holds.
	if !s.BoundHolds(0, 1, 0) {
		t.Fatal("size-1 bound should hold for balanced data")
	}
	// Astronomically large set with tiny φ+δ must fail.
	if s.BoundHolds(0, 60, -s.Delta(0)+0.5) {
		t.Fatal("bound held for absurd set size")
	}
}

func TestScorerAccessors(t *testing.T) {
	m := randomStatus(33, 4, 13)
	s := NewScorer(m)
	if s.Beta() != 33 || s.N() != 4 {
		t.Fatalf("dims = %d,%d", s.Beta(), s.N())
	}
	for v := 0; v < 4; v++ {
		if s.Delta(v) <= 0 {
			t.Fatalf("delta(%d) = %v, want positive", v, s.Delta(v))
		}
	}
}

func TestLocalScorePartsPhi(t *testing.T) {
	// Construct data where one parent combination never occurs.
	m := diffusion.NewStatusMatrix(10, 3)
	for p := 0; p < 10; p++ {
		m.Set(p, 1, true) // parent 1 always infected
	}
	s := NewScorer(m)
	parts := s.LocalScoreParts(0, []int{1, 2})
	// Parent 2 always 0, parent 1 always 1 → only one combination observed,
	// so φ = 4 - 1 = 3.
	if parts.Observed != 1 || parts.Phi != 3 {
		t.Fatalf("observed=%d phi=%v, want 1 and 3", parts.Observed, parts.Phi)
	}
}

func TestLocalScorePanicsOnHugeParentSet(t *testing.T) {
	m := randomStatus(4, 70, 1)
	s := NewScorer(m)
	parents := make([]int, 64)
	for i := range parents {
		parents[i] = i + 1
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 64 parents")
		}
	}()
	s.LocalScoreParts(0, parents)
}
