package core

import (
	"testing"

	"tends/internal/graph"
)

// Parallel inference must produce bit-identical results to serial
// inference for every worker count.
func TestInferParallelDeterministic(t *testing.T) {
	g := graph.Chain(40)
	g.Symmetrize()
	sm := simulateOn(t, g, 0.35, 0.1, 300, 21)
	serial, err := Infer(sm, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16, 100} {
		par, err := Infer(sm, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !serial.Graph.Equal(par.Graph) {
			t.Fatalf("workers=%d produced a different topology", workers)
		}
		if serial.Score != par.Score {
			t.Fatalf("workers=%d score %v != serial %v", workers, par.Score, serial.Score)
		}
		for i := range serial.Parents {
			if len(serial.Parents[i]) != len(par.Parents[i]) {
				t.Fatalf("workers=%d: parent set of node %d differs", workers, i)
			}
			for j := range serial.Parents[i] {
				if serial.Parents[i][j] != par.Parents[i][j] {
					t.Fatalf("workers=%d: parent set of node %d differs", workers, i)
				}
			}
		}
	}
}

func TestInferDefaultWorkers(t *testing.T) {
	g := graph.Star(10)
	g.Symmetrize()
	sm := simulateOn(t, g, 0.4, 0.1, 200, 22)
	// Workers=0 (default: GOMAXPROCS) must run and agree with serial.
	def, err := Infer(sm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Infer(sm, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !def.Graph.Equal(serial.Graph) {
		t.Fatal("default worker count changed the result")
	}
}
