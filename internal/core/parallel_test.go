package core

import (
	"testing"

	"tends/internal/graph"
	"tends/internal/lfr"
)

// Parallel inference must produce bit-identical results to serial
// inference for every worker count.
func TestInferParallelDeterministic(t *testing.T) {
	g := graph.Chain(40)
	g.Symmetrize()
	sm := simulateOn(t, g, 0.35, 0.1, 300, 21)
	serial, err := Infer(sm, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16, 100} {
		par, err := Infer(sm, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !serial.Graph.Equal(par.Graph) {
			t.Fatalf("workers=%d produced a different topology", workers)
		}
		if serial.Score != par.Score {
			t.Fatalf("workers=%d score %v != serial %v", workers, par.Score, serial.Score)
		}
		for i := range serial.Parents {
			if len(serial.Parents[i]) != len(par.Parents[i]) {
				t.Fatalf("workers=%d: parent set of node %d differs", workers, i)
			}
			for j := range serial.Parents[i] {
				if serial.Parents[i][j] != par.Parents[i][j] {
					t.Fatalf("workers=%d: parent set of node %d differs", workers, i)
				}
			}
		}
	}
}

// The IMI matrix must be bit-identical for every worker count, for both
// statistics, on a real LFR workload.
func TestComputeIMIWorkersDeterministic(t *testing.T) {
	res, err := lfr.GenerateBenchmark(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	sm := simulateOn(t, res.Graph, 0.3, 0.15, 150, 17)
	for _, traditional := range []bool{false, true} {
		serial := ComputeIMIWorkers(sm, traditional, 1)
		for _, workers := range []int{0, 2, 4, 16} {
			par := ComputeIMIWorkers(sm, traditional, workers)
			if par.N() != serial.N() {
				t.Fatalf("workers=%d: n=%d, want %d", workers, par.N(), serial.N())
			}
			for i := 0; i < serial.N(); i++ {
				for j := i + 1; j < serial.N(); j++ {
					if par.At(i, j) != serial.At(i, j) {
						t.Fatalf("traditional=%v workers=%d: IMI(%d,%d)=%v, serial %v",
							traditional, workers, i, j, par.At(i, j), serial.At(i, j))
					}
				}
			}
		}
	}
}

func TestInferDefaultWorkers(t *testing.T) {
	g := graph.Star(10)
	g.Symmetrize()
	sm := simulateOn(t, g, 0.4, 0.1, 200, 22)
	// Workers=0 (default: GOMAXPROCS) must run and agree with serial.
	def, err := Infer(sm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Infer(sm, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !def.Graph.Equal(serial.Graph) {
		t.Fatal("default worker count changed the result")
	}
}
