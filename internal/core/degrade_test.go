package core

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"tends/internal/graph"
	"tends/internal/obs"
)

// edgeSet flattens a result's parent lists into a set of (parent, child)
// pairs for subset comparisons.
func edgeSet(res *Result) map[[2]int]bool {
	set := make(map[[2]int]bool)
	for child, parents := range res.Parents {
		for _, p := range parents {
			set[[2]int{p, child}] = true
		}
	}
	return set
}

func sameDegradeReport(a, b []NodeDegrade) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Without degradation knobs the report is empty and a cancelled context
// still fails inference outright.
func TestDegradeOffIsInert(t *testing.T) {
	g := graph.Chain(12)
	g.Symmetrize()
	sm := simulateOn(t, g, 0.4, 0.1, 2000, 1)
	res, err := Infer(sm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Degraded) != 0 {
		t.Fatalf("degradation off, but Degraded = %v", res.Degraded)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := InferContext(ctx, sm, Options{}); err == nil {
		t.Fatal("cancelled context without degradation should fail inference")
	}
}

// A 1ns soft deadline degrades every node that has candidates: the report
// is deterministic for a fixed seed, every reason is DegradeDeadline, the
// kept parent sets are empty, and the predicted edges are a strict subset
// of the unconstrained run's. The same holds at Workers 1 and 4, with
// identical reports.
func TestDegradeDeadlineDeterministic(t *testing.T) {
	g := graph.Chain(12)
	g.Symmetrize()
	sm := simulateOn(t, g, 0.4, 0.1, 2000, 1)
	full, err := Infer(sm, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	fullEdges := edgeSet(full)
	if len(fullEdges) == 0 {
		t.Fatal("unconstrained run predicted no edges; test needs a recoverable network")
	}

	var reports [][]NodeDegrade
	for _, workers := range []int{1, 4} {
		res, err := Infer(sm, Options{Workers: workers, NodeDeadline: time.Nanosecond})
		if err != nil {
			t.Fatalf("Workers=%d: %v", workers, err)
		}
		if len(res.Degraded) == 0 {
			t.Fatalf("Workers=%d: 1ns deadline degraded no nodes", workers)
		}
		for _, d := range res.Degraded {
			if d.Reason != DegradeDeadline {
				t.Fatalf("Workers=%d: node %d degraded with %v, want deadline", workers, d.Node, d.Reason)
			}
			if len(res.Parents[d.Node]) != 0 {
				t.Fatalf("Workers=%d: node %d kept parents %v despite instant deadline", workers, d.Node, res.Parents[d.Node])
			}
		}
		got := edgeSet(res)
		if len(got) >= len(fullEdges) {
			t.Fatalf("Workers=%d: degraded run has %d edges, want strict subset of %d", workers, len(got), len(fullEdges))
		}
		for e := range got {
			if !fullEdges[e] {
				t.Fatalf("Workers=%d: degraded run predicted edge %v absent from the full run", workers, e)
			}
		}
		reports = append(reports, res.Degraded)
	}
	if !sameDegradeReport(reports[0], reports[1]) {
		t.Fatalf("degrade reports differ across worker counts:\n  w1: %v\n  w4: %v", reports[0], reports[1])
	}
}

// The combination budget cuts enumeration at a deterministic point, so two
// runs at any worker counts produce identical reports, parents, and obs
// counters — no wall clock involved.
func TestDegradeComboBudgetDeterministic(t *testing.T) {
	g := graph.Chain(12)
	g.Symmetrize()
	sm := simulateOn(t, g, 0.4, 0.1, 2000, 1)

	run := func(workers int) (*Result, int64) {
		rec := obs.New()
		ctx := obs.With(context.Background(), rec)
		res, err := InferContext(ctx, sm, Options{Workers: workers, ComboBudget: 1})
		if err != nil {
			t.Fatalf("Workers=%d: %v", workers, err)
		}
		return res, rec.Snapshot().Counters["core/degraded/combo_budget"]
	}
	first, firstCount := run(1)
	if len(first.Degraded) == 0 {
		t.Fatal("ComboBudget=1 degraded no nodes on a dense chain")
	}
	for _, d := range first.Degraded {
		if d.Reason != DegradeComboBudget {
			t.Fatalf("node %d degraded with %v, want combo_budget", d.Node, d.Reason)
		}
	}
	if firstCount != int64(len(first.Degraded)) {
		t.Fatalf("obs counter %d != report size %d", firstCount, len(first.Degraded))
	}
	for _, workers := range []int{1, 4} {
		res, count := run(workers)
		if !sameDegradeReport(first.Degraded, res.Degraded) {
			t.Fatalf("Workers=%d report differs:\n  first: %v\n  again: %v", workers, first.Degraded, res.Degraded)
		}
		if count != firstCount {
			t.Fatalf("Workers=%d obs counter = %d, want %d", workers, count, firstCount)
		}
		for i := range first.Parents {
			if len(first.Parents[i]) != len(res.Parents[i]) {
				t.Fatalf("Workers=%d: node %d parents differ: %v vs %v", workers, i, first.Parents[i], res.Parents[i])
			}
			for k := range first.Parents[i] {
				if first.Parents[i][k] != res.Parents[i][k] {
					t.Fatalf("Workers=%d: node %d parents differ: %v vs %v", workers, i, first.Parents[i], res.Parents[i])
				}
			}
		}
	}
}

// flipCtx is a context whose Err flips permanently to context.Canceled
// after a fixed number of Err calls. Core only polls Err (never Done), and
// at Workers=1 the polling sequence is a deterministic function of the
// input, so this turns "cancelled mid-search" into a reproducible event.
type flipCtx struct {
	context.Context
	calls atomic.Int64
	after int64
}

func (c *flipCtx) Err() error {
	if c.calls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// Mid-search cancellation in degrade mode completes with DegradeCancelled
// nodes instead of failing, and the nodes searched before the cut keep
// exactly the parents the unconstrained run finds. Cancellation landing
// before the search stage still errors.
func TestDegradeCancelledKeepsPartialTopology(t *testing.T) {
	g := graph.Chain(12)
	g.Symmetrize()
	sm := simulateOn(t, g, 0.4, 0.1, 2000, 1)
	full, err := Infer(sm, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// A huge NodeDeadline arms degrade mode without ever cutting a node
	// itself, so every degradation below is attributable to the flip.
	opt := Options{Workers: 1, NodeDeadline: time.Hour}

	// A context cancelled from the start must fail before the search stage.
	pre, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := InferContext(pre, sm, opt); err == nil {
		t.Fatal("pre-cancelled context should error even in degrade mode")
	}

	// Sweep the flip point forward until it lands inside the search stage:
	// early flips error at IMI (skip), late flips never cancel (stop).
	for after := int64(1); ; after += 3 {
		ctx := &flipCtx{Context: context.Background(), after: after}
		res, err := InferContext(ctx, sm, opt)
		if err != nil {
			continue
		}
		if len(res.Degraded) == 0 {
			t.Fatal("flip never landed inside the search stage; no cancellation was observed")
		}
		cut := make(map[int]bool)
		for _, d := range res.Degraded {
			if d.Reason != DegradeCancelled {
				t.Fatalf("node %d degraded with %v, want cancelled", d.Node, d.Reason)
			}
			cut[d.Node] = true
		}
		for i := range res.Parents {
			if cut[i] {
				continue
			}
			if len(res.Parents[i]) != len(full.Parents[i]) {
				t.Fatalf("uncut node %d parents %v differ from full run %v", i, res.Parents[i], full.Parents[i])
			}
			for k := range res.Parents[i] {
				if res.Parents[i][k] != full.Parents[i][k] {
					t.Fatalf("uncut node %d parents %v differ from full run %v", i, res.Parents[i], full.Parents[i])
				}
			}
		}
		return
	}
}
