package core

import (
	"context"
	"runtime"
	"testing"
	"time"

	"tends/internal/graph"
)

// Micro-benchmarks of the TENDS hot paths at the paper's default workload
// scale (n=200, β=150).

func BenchmarkComputeIMI(b *testing.B) {
	m := randomStatus(150, 200, 42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeIMI(m, false)
	}
}

// The acceptance-scale IMI benchmark (n=300), serial vs all-cores.
func BenchmarkComputeIMI300Serial(b *testing.B) {
	m := randomStatus(150, 300, 42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeIMIWorkers(m, false, 1)
	}
}

func BenchmarkComputeIMI300Parallel(b *testing.B) {
	m := randomStatus(150, 300, 42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeIMIWorkers(m, false, runtime.GOMAXPROCS(0))
	}
}

// BenchmarkEnumerateCombos exercises the prefix-sharing DFS over a
// realistic candidate pool (16 candidates, pairs and triples).
func BenchmarkEnumerateCombos(b *testing.B) {
	s := NewScorer(randomStatus(150, 200, 42))
	cands := make([]int, 16)
	for i := range cands {
		cands[i] = 2 + 3*i
	}
	for _, size := range []int{2, 3} {
		opt := Options{MaxComboSize: size}.withDefaults()
		b.Run(map[int]string{2: "eta2", 3: "eta3"}[size], func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if combos, _ := enumerateCombos(context.Background(), s, 0, cands, opt, time.Time{}); len(combos) == 0 {
					b.Fatal("no combinations enumerated")
				}
			}
		})
	}
}

func BenchmarkSelectThresholdKMeans(b *testing.B) {
	m := randomStatus(150, 200, 42)
	imi := ComputeIMI(m, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SelectThreshold(imi)
	}
}

func BenchmarkSelectThresholdFDR(b *testing.B) {
	m := randomStatus(150, 200, 42)
	imi := ComputeIMI(m, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SelectThresholdFDR(imi, 150, 0.2)
	}
}

func BenchmarkLocalScoreSmall(b *testing.B) {
	s := NewScorer(randomStatus(150, 200, 42))
	parents := []int{3, 17}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.LocalScore(0, parents)
	}
}

func BenchmarkLocalScoreLarge(b *testing.B) {
	s := NewScorer(randomStatus(150, 200, 42))
	parents := []int{3, 17, 42, 77, 101, 150, 163, 199}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.LocalScore(0, parents)
	}
}

// BenchmarkAdaptiveMerge isolates the greedy merge over a pre-enumerated
// combination pool — the stage the mask-based membership test targets.
func BenchmarkAdaptiveMerge(b *testing.B) {
	s := NewScorer(randomStatus(150, 200, 42))
	cands := make([]int, 16)
	for i := range cands {
		cands[i] = 2 + 3*i
	}
	opt := Options{MaxComboSize: 2}.withDefaults()
	combos, _ := enumerateCombos(context.Background(), s, 0, cands, opt, time.Time{})
	if len(combos) == 0 {
		b.Fatal("no combinations enumerated")
	}
	tel := coreTel{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		adaptiveMerge(context.Background(), s, 0, combos, opt, tel.merges, time.Time{})
	}
}

func BenchmarkInferChain200(b *testing.B) {
	g := graph.Chain(200)
	g.Symmetrize()
	m := simulateOn(b, g, 0.3, 0.15, 150, 9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Infer(m, Options{Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
