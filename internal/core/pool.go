package core

import (
	"math"
	"sort"

	"tends/internal/stats"
)

// valuePool is a run-length-encoded summary of the n(n−1)/2 pairwise values
// — everything the threshold selectors consume. Only the strictly positive
// values are materialized (as ascending distinct runs with multiplicities):
// zeros can never sit above a two-means boundary and break the FDR walk, so
// both selectors need only their count. Negative values contribute to total
// and maxAll alone.
//
// Both the dense and sparse engines reduce to this same canonical form, so
// thresholds — and therefore candidate sets and inferred topologies — are
// bit-identical between the two paths by construction.
type valuePool struct {
	pos    []float64 // ascending, distinct, strictly positive values
	posCnt []int64   // parallel multiplicities
	zeros  int64     // pairs whose value is exactly 0
	total  int64     // all pairs, including negative-valued ones
	maxAll float64   // maximum value over all pairs (any sign); valid when total > 0
}

// poolBuilder accumulates (value, multiplicity) contributions in any order
// and canonicalizes them: runs are sorted ascending and equal values merged,
// so the finished pool depends only on the value multiset.
type poolBuilder struct {
	vals   []float64
	cnts   []int64
	zeros  int64
	total  int64
	maxAll float64
}

func (b *poolBuilder) add(v float64, c int64) {
	if c <= 0 {
		return
	}
	if b.total == 0 || v > b.maxAll {
		b.maxAll = v
	}
	b.total += c
	if v == 0 {
		b.zeros += c
		return
	}
	if v > 0 {
		b.vals = append(b.vals, v)
		b.cnts = append(b.cnts, c)
	}
}

func (b *poolBuilder) Len() int           { return len(b.vals) }
func (b *poolBuilder) Less(i, j int) bool { return b.vals[i] < b.vals[j] }
func (b *poolBuilder) Swap(i, j int) {
	b.vals[i], b.vals[j] = b.vals[j], b.vals[i]
	b.cnts[i], b.cnts[j] = b.cnts[j], b.cnts[i]
}

func (b *poolBuilder) finish() *valuePool {
	sort.Sort(b)
	// Merge equal values in place; equal runs are interchangeable, so the
	// merged pool is independent of the insertion order.
	out := 0
	for i := 0; i < len(b.vals); i++ {
		if out > 0 && b.vals[i] == b.vals[out-1] {
			b.cnts[out-1] += b.cnts[i]
			continue
		}
		b.vals[out] = b.vals[i]
		b.cnts[out] = b.cnts[i]
		out++
	}
	return &valuePool{
		pos:    b.vals[:out],
		posCnt: b.cnts[:out],
		zeros:  b.zeros,
		total:  b.total,
		maxAll: b.maxAll,
	}
}

// pairValueVisitor streams every unordered pairwise value with a
// multiplicity; the visit order is unspecified and multiplicities for equal
// values may arrive split across calls.
type pairValueVisitor interface {
	VisitPairValues(visit func(v float64, count int64))
}

func poolFrom(src pairValueVisitor) *valuePool {
	var b poolBuilder
	src.VisitPairValues(b.add)
	return b.finish()
}

// twoMeansTau runs the pinned two-means selector over the pool.
func (p *valuePool) twoMeansTau() float64 {
	return stats.TwoMeansThresholdRuns(p.pos, p.posCnt, p.zeros, twoMeansMaxIter)
}

// fdrTau runs the Benjamini–Hochberg selector of SelectThresholdFDR over the
// pool. Ranks are evaluated at run boundaries, which is exactly equivalent
// to the per-value walk: within a run the p-value is constant while the BH
// bar α·k/M only rises with k, so a run qualifies iff its last rank does.
func (p *valuePool) fdrTau(beta int, alpha float64) float64 {
	if alpha <= 0 || alpha >= 1 {
		panic("core: FDR alpha must be in (0,1)")
	}
	if p.total == 0 {
		return 0
	}
	mTests := float64(p.total)
	factor := 2 * math.Ln2 * float64(beta)
	var accepted int64 = -1
	var acceptedVal float64
	var rank int64
	for r := len(p.pos) - 1; r >= 0; r-- {
		v := p.pos[r]
		rank += p.posCnt[r]
		pv := chiSquared1Tail(factor * v)
		if pv <= alpha*float64(rank)/mTests {
			accepted = rank
			acceptedVal = v
		}
	}
	if accepted < 0 {
		return p.maxAll + 1 // above the maximum: prune everything
	}
	// Candidates are admitted by value > τ, so back off an epsilon to keep
	// the boundary value itself.
	return acceptedVal * (1 - 1e-12)
}
