// Package graph provides the directed-graph model used throughout the
// repository: the ground-truth diffusion networks that experiments simulate
// on, and the inferred topologies that reconstruction algorithms return.
//
// Nodes are identified by dense integer indices in [0, N). Edges are
// directed; an edge (u, v) means u has an influence relationship to v, i.e.
// an infected u may infect v. The representation keeps both out- and
// in-adjacency so that simulators (which walk children) and inference code
// (which reasons about parents) are equally cheap.
package graph

import (
	"fmt"
	"math"
	"sort"
)

// Edge is a directed edge from From to To.
type Edge struct {
	From, To int
}

// Directed is a mutable directed graph over nodes 0..n-1.
//
// The zero value is not usable; create graphs with New. Methods that take
// node indices panic when an index is out of range, because an out-of-range
// node is always a programming error in this codebase (node sets are fixed
// up front by the problem statement).
type Directed struct {
	n        int
	out      [][]int // children per node, kept sorted
	in       [][]int // parents per node, kept sorted
	edgeSet  map[Edge]struct{}
	numEdges int
}

// New returns an empty directed graph with n nodes and no edges.
func New(n int) *Directed {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative node count %d", n))
	}
	return &Directed{
		n:       n,
		out:     make([][]int, n),
		in:      make([][]int, n),
		edgeSet: make(map[Edge]struct{}),
	}
}

// NumNodes returns the number of nodes.
func (g *Directed) NumNodes() int { return g.n }

// NumEdges returns the number of directed edges.
func (g *Directed) NumEdges() int { return g.numEdges }

func (g *Directed) check(v int) {
	if v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: node %d out of range [0,%d)", v, g.n))
	}
}

// HasEdge reports whether the directed edge (from, to) exists.
func (g *Directed) HasEdge(from, to int) bool {
	g.check(from)
	g.check(to)
	_, ok := g.edgeSet[Edge{from, to}]
	return ok
}

// AddEdge inserts the directed edge (from, to). Inserting an existing edge
// or a self-loop is a no-op; the method reports whether the edge was added.
func (g *Directed) AddEdge(from, to int) bool {
	g.check(from)
	g.check(to)
	if from == to {
		return false
	}
	e := Edge{from, to}
	if _, ok := g.edgeSet[e]; ok {
		return false
	}
	g.edgeSet[e] = struct{}{}
	g.out[from] = insertSorted(g.out[from], to)
	g.in[to] = insertSorted(g.in[to], from)
	g.numEdges++
	return true
}

// RemoveEdge deletes the directed edge (from, to) and reports whether it
// existed.
func (g *Directed) RemoveEdge(from, to int) bool {
	g.check(from)
	g.check(to)
	e := Edge{from, to}
	if _, ok := g.edgeSet[e]; !ok {
		return false
	}
	delete(g.edgeSet, e)
	g.out[from] = removeSorted(g.out[from], to)
	g.in[to] = removeSorted(g.in[to], from)
	g.numEdges--
	return true
}

// Children returns the nodes v such that (u, v) is an edge. The returned
// slice is sorted and must not be modified by the caller.
func (g *Directed) Children(u int) []int {
	g.check(u)
	return g.out[u]
}

// Parents returns the nodes v such that (v, u) is an edge. The returned
// slice is sorted and must not be modified by the caller.
func (g *Directed) Parents(u int) []int {
	g.check(u)
	return g.in[u]
}

// OutDegree returns the number of children of u.
func (g *Directed) OutDegree(u int) int {
	g.check(u)
	return len(g.out[u])
}

// InDegree returns the number of parents of u.
func (g *Directed) InDegree(u int) int {
	g.check(u)
	return len(g.in[u])
}

// Edges returns all edges sorted by (From, To). The slice is freshly
// allocated and owned by the caller.
func (g *Directed) Edges() []Edge {
	edges := make([]Edge, 0, g.numEdges)
	for u := 0; u < g.n; u++ {
		for _, v := range g.out[u] {
			edges = append(edges, Edge{u, v})
		}
	}
	return edges
}

// Clone returns a deep copy of g.
func (g *Directed) Clone() *Directed {
	c := New(g.n)
	for e := range g.edgeSet {
		c.AddEdge(e.From, e.To)
	}
	return c
}

// Symmetrize adds the reverse of every edge, turning g into the directed
// version of an undirected graph. It returns the number of edges added.
func (g *Directed) Symmetrize() int {
	added := 0
	for _, e := range g.Edges() {
		if g.AddEdge(e.To, e.From) {
			added++
		}
	}
	return added
}

// Equal reports whether g and h have the same node count and edge set.
func (g *Directed) Equal(h *Directed) bool {
	if g.n != h.n || g.numEdges != h.numEdges {
		return false
	}
	for e := range g.edgeSet {
		if _, ok := h.edgeSet[e]; !ok {
			return false
		}
	}
	return true
}

// String returns a short human-readable summary.
func (g *Directed) String() string {
	return fmt.Sprintf("Directed(n=%d, m=%d)", g.n, g.numEdges)
}

// AverageDegree returns the total number of edges divided by the number of
// nodes, the edge-density measure the paper's Section V-C uses.
func (g *Directed) AverageDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return float64(g.numEdges) / float64(g.n)
}

// DegreeStats summarizes the in-degree distribution of the graph.
type DegreeStats struct {
	Min, Max     int
	Mean, StdDev float64
}

// InDegreeStats computes summary statistics of the in-degree distribution.
func (g *Directed) InDegreeStats() DegreeStats {
	return degreeStats(g.in)
}

// OutDegreeStats computes summary statistics of the out-degree distribution.
func (g *Directed) OutDegreeStats() DegreeStats {
	return degreeStats(g.out)
}

func degreeStats(adj [][]int) DegreeStats {
	if len(adj) == 0 {
		return DegreeStats{}
	}
	s := DegreeStats{Min: len(adj[0])}
	var sum, sumSq float64
	for _, nb := range adj {
		d := len(nb)
		if d < s.Min {
			s.Min = d
		}
		if d > s.Max {
			s.Max = d
		}
		sum += float64(d)
		sumSq += float64(d) * float64(d)
	}
	n := float64(len(adj))
	s.Mean = sum / n
	variance := sumSq/n - s.Mean*s.Mean
	if variance < 0 {
		variance = 0
	}
	s.StdDev = math.Sqrt(variance)
	return s
}

func insertSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func removeSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	if i < len(s) && s[i] == v {
		return append(s[:i], s[i+1:]...)
	}
	return s
}
