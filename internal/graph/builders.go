package graph

import (
	"math/rand"
	"sort"
)

// Builders for simple deterministic and random topologies. They are used by
// tests (recovery on graphs whose structure is known exactly) and by the
// examples. All random builders take an explicit *rand.Rand so that callers
// control reproducibility.

// Chain returns the path 0 -> 1 -> ... -> n-1.
func Chain(n int) *Directed {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// Star returns a graph where node 0 points at every other node.
func Star(n int) *Directed {
	g := New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, i)
	}
	return g
}

// BalancedTree returns a rooted tree with the given branching factor, edges
// directed from parent to child, containing exactly n nodes.
func BalancedTree(n, branching int) *Directed {
	if branching < 1 {
		panic("graph: branching must be >= 1")
	}
	g := New(n)
	for child := 1; child < n; child++ {
		parent := (child - 1) / branching
		g.AddEdge(parent, child)
	}
	return g
}

// Cycle returns the directed cycle 0 -> 1 -> ... -> n-1 -> 0.
func Cycle(n int) *Directed {
	g := Chain(n)
	if n > 1 {
		g.AddEdge(n-1, 0)
	}
	return g
}

// GNM returns a uniform random directed graph with n nodes and m distinct
// edges (no self-loops). It panics if m exceeds n*(n-1).
func GNM(n, m int, rng *rand.Rand) *Directed {
	if m > n*(n-1) {
		panic("graph: too many edges requested")
	}
	g := New(n)
	for g.NumEdges() < m {
		u := rng.Intn(n)
		v := rng.Intn(n)
		g.AddEdge(u, v)
	}
	return g
}

// PreferentialAttachment grows a directed graph by attaching each new node
// to `attach` existing nodes chosen with probability proportional to their
// current total degree plus one, then directing each new edge randomly.
// This yields the heavy-tailed degree distributions characteristic of
// collaboration and follower networks.
func PreferentialAttachment(n, attach int, rng *rand.Rand) *Directed {
	g := New(n)
	if n == 0 {
		return g
	}
	// degreeBag holds one entry per degree unit plus one per node, so
	// drawing uniformly from it implements "degree + 1" preferential
	// attachment.
	degreeBag := make([]int, 0, 2*n*attach)
	degreeBag = append(degreeBag, 0)
	for v := 1; v < n; v++ {
		targets := make(map[int]struct{}, attach)
		k := attach
		if k > v {
			k = v
		}
		for len(targets) < k {
			targets[degreeBag[rng.Intn(len(degreeBag))]] = struct{}{}
		}
		ordered := make([]int, 0, len(targets))
		for t := range targets {
			ordered = append(ordered, t)
		}
		sort.Ints(ordered) // map order is random; keep the build deterministic
		for _, t := range ordered {
			if rng.Intn(2) == 0 {
				g.AddEdge(v, t)
			} else {
				g.AddEdge(t, v)
			}
			degreeBag = append(degreeBag, t)
			degreeBag = append(degreeBag, v)
		}
		degreeBag = append(degreeBag, v)
	}
	return g
}
