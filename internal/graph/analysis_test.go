package graph

import (
	"math"
	"testing"
)

func TestWeaklyConnectedComponents(t *testing.T) {
	g := New(7)
	g.AddEdge(0, 1)
	g.AddEdge(2, 1) // {0,1,2} weakly connected via reversed edge
	g.AddEdge(3, 4) // {3,4}
	// 5, 6 singletons
	comps := g.WeaklyConnectedComponents()
	if len(comps) != 4 {
		t.Fatalf("components = %d, want 4: %v", len(comps), comps)
	}
	if len(comps[0]) != 3 || comps[0][0] != 0 || comps[0][2] != 2 {
		t.Fatalf("largest component = %v, want [0 1 2]", comps[0])
	}
	if len(comps[1]) != 2 {
		t.Fatalf("second component = %v", comps[1])
	}
	// Singletons sorted by node id.
	if comps[2][0] != 5 || comps[3][0] != 6 {
		t.Fatalf("singletons = %v %v", comps[2], comps[3])
	}
}

func TestWeaklyConnectedComponentsCoverAllNodes(t *testing.T) {
	g := Cycle(9)
	comps := g.WeaklyConnectedComponents()
	if len(comps) != 1 || len(comps[0]) != 9 {
		t.Fatalf("cycle components = %v", comps)
	}
	seen := map[int]bool{}
	for _, c := range comps {
		for _, v := range c {
			if seen[v] {
				t.Fatalf("node %d in two components", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != 9 {
		t.Fatalf("covered %d nodes", len(seen))
	}
}

func TestReciprocity(t *testing.T) {
	g := New(4)
	if g.Reciprocity() != 0 {
		t.Fatal("empty graph reciprocity should be 0")
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(2, 3)
	if r := g.Reciprocity(); math.Abs(r-2.0/3) > 1e-12 {
		t.Fatalf("reciprocity = %v, want 2/3", r)
	}
	sym := Chain(5)
	sym.Symmetrize()
	if r := sym.Reciprocity(); r != 1 {
		t.Fatalf("symmetric graph reciprocity = %v, want 1", r)
	}
}

func TestClusteringCoefficient(t *testing.T) {
	// A triangle: clustering 1.
	tri := New(3)
	tri.AddEdge(0, 1)
	tri.AddEdge(1, 2)
	tri.AddEdge(2, 0)
	if c := tri.ClusteringCoefficient(); math.Abs(c-1) > 1e-12 {
		t.Fatalf("triangle clustering = %v, want 1", c)
	}
	// A star: no triangles, clustering 0.
	star := Star(6)
	if c := star.ClusteringCoefficient(); c != 0 {
		t.Fatalf("star clustering = %v, want 0", c)
	}
	// Empty / tiny graphs: no triples.
	if c := New(2).ClusteringCoefficient(); c != 0 {
		t.Fatalf("empty clustering = %v", c)
	}
	// A path 0-1-2 with the closing edge missing: 0 of 2 centered triples
	// closed, plus symmetrized direction handling.
	path := Chain(3)
	if c := path.ClusteringCoefficient(); c != 0 {
		t.Fatalf("path clustering = %v, want 0", c)
	}
}

func TestClusteringRange(t *testing.T) {
	g := BalancedTree(31, 2)
	g.AddEdge(1, 2) // one triangle at the root
	c := g.ClusteringCoefficient()
	if c <= 0 || c >= 1 {
		t.Fatalf("clustering = %v, want within (0,1)", c)
	}
}
