package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead exercises the graph parser with arbitrary input: it must never
// panic, and anything it accepts must survive a write/read round trip.
func FuzzRead(f *testing.F) {
	f.Add("nodes 3\n0 1\n1 2\n")
	f.Add("nodes 0\n")
	f.Add("# comment\nnodes 2\n\n0 1\n")
	f.Add("nodes -1\n")
	f.Add("nodes 3\n0 99\n")
	f.Add("nodes 3\nx y\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatalf("accepted graph failed to serialize: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("own serialization rejected: %v", err)
		}
		if !g.Equal(back) {
			t.Fatal("round trip changed the graph")
		}
	})
}

// FuzzWriteRoundTrip drives the serializer from structured input: an
// arbitrary graph is built from the fuzzed byte string, written, re-read,
// and written again. The read-back must equal the original and the second
// serialization must be byte-identical to the first — the determinism the
// golden-file tests (and the checkpoint/resume protocol) rely on.
func FuzzWriteRoundTrip(f *testing.F) {
	f.Add(uint8(3), []byte{0, 1, 1, 2})
	f.Add(uint8(0), []byte{})
	f.Add(uint8(1), []byte{0, 0})
	f.Add(uint8(200), []byte{199, 0, 5, 5, 0, 199})
	f.Fuzz(func(t *testing.T, n uint8, edges []byte) {
		g := New(int(n))
		for i := 0; i+1 < len(edges); i += 2 {
			from, to := int(edges[i]), int(edges[i+1])
			if from < int(n) && to < int(n) {
				g.AddEdge(from, to)
			}
		}
		var first bytes.Buffer
		if err := Write(&first, g); err != nil {
			t.Fatalf("write: %v", err)
		}
		back, err := Read(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("own serialization rejected: %v", err)
		}
		if !g.Equal(back) {
			t.Fatal("round trip changed the graph")
		}
		var second bytes.Buffer
		if err := Write(&second, back); err != nil {
			t.Fatalf("rewrite: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("serialization not byte-stable:\nfirst:\n%s\nsecond:\n%s", first.Bytes(), second.Bytes())
		}
	})
}
