package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead exercises the graph parser with arbitrary input: it must never
// panic, and anything it accepts must survive a write/read round trip.
func FuzzRead(f *testing.F) {
	f.Add("nodes 3\n0 1\n1 2\n")
	f.Add("nodes 0\n")
	f.Add("# comment\nnodes 2\n\n0 1\n")
	f.Add("nodes -1\n")
	f.Add("nodes 3\n0 99\n")
	f.Add("nodes 3\nx y\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatalf("accepted graph failed to serialize: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("own serialization rejected: %v", err)
		}
		if !g.Equal(back) {
			t.Fatal("round trip changed the graph")
		}
	})
}
