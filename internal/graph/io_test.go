package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := GNM(25, 80, rng)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !g.Equal(got) {
		t.Fatal("round trip lost edges")
	}
}

func TestWriteDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := GNM(15, 40, rng)
	var a, b bytes.Buffer
	if err := Write(&a, g); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, g.Clone()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("serialization is not deterministic")
	}
}

func TestReadCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\nnodes 3\n# another\n0 1\n\n1 2\n"
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if g.NumNodes() != 3 || !g.HasEdge(0, 1) || !g.HasEdge(1, 2) {
		t.Fatalf("parsed graph wrong: %v edges=%v", g, g.Edges())
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"no header", "0 1\n"},
		{"bad header", "nodes x\n"},
		{"negative nodes", "nodes -2\n"},
		{"bad edge arity", "nodes 3\n0 1 2\n"},
		{"bad from", "nodes 3\nx 1\n"},
		{"bad to", "nodes 3\n1 y\n"},
		{"edge out of range", "nodes 3\n0 7\n"},
		{"negative node", "nodes 3\n-1 2\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Read(strings.NewReader(tc.in)); err == nil {
				t.Fatalf("Read(%q) succeeded, want error", tc.in)
			}
		})
	}
}

// Property: any graph over a small node set survives a serialize/parse
// round trip exactly.
func TestRoundTripProperty(t *testing.T) {
	f := func(pairs []uint16, nodesSeed uint8) bool {
		n := int(nodesSeed%20) + 1
		g := New(n)
		for _, p := range pairs {
			g.AddEdge(int(p>>8)%n, int(p&0xff)%n)
		}
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		return g.Equal(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
