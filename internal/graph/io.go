package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// MaxNodes bounds the node count accepted when parsing untrusted graph
// files, protecting against absurd allocations from corrupt headers.
const MaxNodes = 1 << 26

// The text format is deliberately simple and deterministic:
//
//	# optional comment lines
//	nodes <n>
//	<from> <to>
//	<from> <to>
//	...
//
// Edges are written sorted by (From, To), so serializing the same graph
// always produces identical bytes, which keeps golden-file tests stable.

// Write serializes g to w in the text format above.
func Write(w io.Writer, g *Directed) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "nodes %d\n", g.NumNodes()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.From, e.To); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a graph in the text format produced by Write.
func Read(r io.Reader) (*Directed, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var g *Directed
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if g == nil {
			fields := strings.Fields(line)
			if len(fields) != 2 || fields[0] != "nodes" {
				return nil, fmt.Errorf("graph: line %d: expected header %q, got %q", lineNo, "nodes <n>", line)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad node count: %v", lineNo, err)
			}
			if n < 0 {
				return nil, fmt.Errorf("graph: line %d: negative node count %d", lineNo, n)
			}
			if n > MaxNodes {
				return nil, fmt.Errorf("graph: line %d: node count %d exceeds the %d limit", lineNo, n, MaxNodes)
			}
			g = New(n)
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("graph: line %d: expected %q, got %q", lineNo, "<from> <to>", line)
		}
		from, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad from-node: %v", lineNo, err)
		}
		to, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad to-node: %v", lineNo, err)
		}
		if from < 0 || from >= g.NumNodes() || to < 0 || to >= g.NumNodes() {
			return nil, fmt.Errorf("graph: line %d: edge (%d,%d) out of range [0,%d)", lineNo, from, to, g.NumNodes())
		}
		g.AddEdge(from, to)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("graph: empty input, missing %q header", "nodes <n>")
	}
	return g, nil
}
