package graph

import "sort"

// Analysis helpers: structural statistics used by the dataset stand-ins,
// the experiment diagnostics, and the CLI tools.

// WeaklyConnectedComponents returns the node sets of the weakly connected
// components (edge direction ignored), largest first; singleton nodes form
// their own components.
func (g *Directed) WeaklyConnectedComponents() [][]int {
	visited := make([]bool, g.n)
	var comps [][]int
	for start := 0; start < g.n; start++ {
		if visited[start] {
			continue
		}
		var comp []int
		stack := []int{start}
		visited[start] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for _, u := range g.out[v] {
				if !visited[u] {
					visited[u] = true
					stack = append(stack, u)
				}
			}
			for _, u := range g.in[v] {
				if !visited[u] {
					visited[u] = true
					stack = append(stack, u)
				}
			}
		}
		comps = append(comps, comp)
	}
	// Largest first, deterministic tie-break by smallest member.
	for i := range comps {
		sortInts(comps[i])
	}
	sortComponents(comps)
	return comps
}

// Reciprocity returns the fraction of directed edges whose reverse edge
// also exists; 0 for an empty graph.
func (g *Directed) Reciprocity() float64 {
	if g.numEdges == 0 {
		return 0
	}
	mutual := 0
	for e := range g.edgeSet {
		if g.HasEdge(e.To, e.From) {
			mutual++
		}
	}
	return float64(mutual) / float64(g.numEdges)
}

// ClusteringCoefficient returns the global clustering coefficient of the
// underlying undirected graph: 3 × triangles / connected triples. 0 when no
// triples exist.
func (g *Directed) ClusteringCoefficient() float64 {
	// Undirected neighbor sets.
	neighbors := make([]map[int]struct{}, g.n)
	for v := 0; v < g.n; v++ {
		set := make(map[int]struct{})
		for _, u := range g.out[v] {
			set[u] = struct{}{}
		}
		for _, u := range g.in[v] {
			set[u] = struct{}{}
		}
		neighbors[v] = set
	}
	closedTriples := 0 // ordered triples with both legs and the closing edge
	triples := 0       // ordered connected triples centered at v
	for v := 0; v < g.n; v++ {
		nb := make([]int, 0, len(neighbors[v]))
		for u := range neighbors[v] {
			nb = append(nb, u)
		}
		d := len(nb)
		triples += d * (d - 1)
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				if i == j {
					continue
				}
				if _, ok := neighbors[nb[i]][nb[j]]; ok {
					closedTriples++
				}
			}
		}
	}
	if triples == 0 {
		return 0
	}
	return float64(closedTriples) / float64(triples)
}

func sortInts(s []int) { sort.Ints(s) }

func sortComponents(comps [][]int) {
	sort.Slice(comps, func(i, j int) bool {
		if len(comps[i]) != len(comps[j]) {
			return len(comps[i]) > len(comps[j])
		}
		return comps[i][0] < comps[j][0]
	})
}
