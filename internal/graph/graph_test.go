package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	g := New(5)
	if g.NumNodes() != 5 {
		t.Fatalf("NumNodes = %d, want 5", g.NumNodes())
	}
	if g.NumEdges() != 0 {
		t.Fatalf("NumEdges = %d, want 0", g.NumEdges())
	}
	for v := 0; v < 5; v++ {
		if len(g.Children(v)) != 0 || len(g.Parents(v)) != 0 {
			t.Fatalf("node %d has unexpected adjacency", v)
		}
	}
}

func TestAddEdge(t *testing.T) {
	g := New(3)
	if !g.AddEdge(0, 1) {
		t.Fatal("AddEdge(0,1) = false, want true")
	}
	if g.AddEdge(0, 1) {
		t.Fatal("duplicate AddEdge(0,1) = true, want false")
	}
	if g.AddEdge(1, 1) {
		t.Fatal("self-loop AddEdge(1,1) = true, want false")
	}
	if !g.HasEdge(0, 1) {
		t.Fatal("HasEdge(0,1) = false after insert")
	}
	if g.HasEdge(1, 0) {
		t.Fatal("HasEdge(1,0) = true; edges must be directed")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestRemoveEdge(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	if !g.RemoveEdge(0, 1) {
		t.Fatal("RemoveEdge existing = false")
	}
	if g.RemoveEdge(0, 1) {
		t.Fatal("RemoveEdge missing = true")
	}
	if g.HasEdge(0, 1) || !g.HasEdge(0, 2) {
		t.Fatal("edge set wrong after removal")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	if d := g.InDegree(1); d != 0 {
		t.Fatalf("InDegree(1) = %d, want 0", d)
	}
}

func TestAdjacencySorted(t *testing.T) {
	g := New(6)
	for _, v := range []int{5, 2, 4, 1, 3} {
		g.AddEdge(0, v)
		g.AddEdge(v, 0)
	}
	prev := -1
	for _, c := range g.Children(0) {
		if c <= prev {
			t.Fatalf("Children(0) not sorted: %v", g.Children(0))
		}
		prev = c
	}
	prev = -1
	for _, p := range g.Parents(0) {
		if p <= prev {
			t.Fatalf("Parents(0) not sorted: %v", g.Parents(0))
		}
		prev = p
	}
}

func TestEdgesSortedAndComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := GNM(20, 60, rng)
	edges := g.Edges()
	if len(edges) != 60 {
		t.Fatalf("len(Edges) = %d, want 60", len(edges))
	}
	for i := 1; i < len(edges); i++ {
		a, b := edges[i-1], edges[i]
		if a.From > b.From || (a.From == b.From && a.To >= b.To) {
			t.Fatalf("Edges not strictly sorted at %d: %v %v", i, a, b)
		}
	}
	for _, e := range edges {
		if !g.HasEdge(e.From, e.To) {
			t.Fatalf("edge %v listed but not present", e)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	g := Chain(4)
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone not equal to original")
	}
	c.AddEdge(3, 0)
	if g.Equal(c) {
		t.Fatal("mutating clone affected original comparison")
	}
	if g.HasEdge(3, 0) {
		t.Fatal("mutating clone mutated original")
	}
}

func TestSymmetrize(t *testing.T) {
	g := Chain(4) // 3 edges
	added := g.Symmetrize()
	if added != 3 {
		t.Fatalf("Symmetrize added %d, want 3", added)
	}
	for _, e := range g.Edges() {
		if !g.HasEdge(e.To, e.From) {
			t.Fatalf("missing reverse of %v", e)
		}
	}
	if g.Symmetrize() != 0 {
		t.Fatal("second Symmetrize should add nothing")
	}
}

func TestDegreeStats(t *testing.T) {
	g := Star(5) // node 0 -> 1..4
	out := g.OutDegreeStats()
	if out.Max != 4 || out.Min != 0 {
		t.Fatalf("out stats = %+v", out)
	}
	if out.Mean != 4.0/5.0 {
		t.Fatalf("out mean = %v, want 0.8", out.Mean)
	}
	in := g.InDegreeStats()
	if in.Max != 1 || in.Min != 0 {
		t.Fatalf("in stats = %+v", in)
	}
	if g.AverageDegree() != 4.0/5.0 {
		t.Fatalf("AverageDegree = %v", g.AverageDegree())
	}
}

func TestBuilders(t *testing.T) {
	if g := Chain(5); g.NumEdges() != 4 || !g.HasEdge(0, 1) || !g.HasEdge(3, 4) {
		t.Fatalf("Chain wrong: %v", g)
	}
	if g := Star(5); g.NumEdges() != 4 || g.OutDegree(0) != 4 {
		t.Fatalf("Star wrong: %v", g)
	}
	if g := Cycle(4); g.NumEdges() != 4 || !g.HasEdge(3, 0) {
		t.Fatalf("Cycle wrong: %v", g)
	}
	bt := BalancedTree(7, 2)
	if bt.NumEdges() != 6 {
		t.Fatalf("BalancedTree edges = %d, want 6", bt.NumEdges())
	}
	for v := 1; v < 7; v++ {
		if bt.InDegree(v) != 1 {
			t.Fatalf("tree node %d has in-degree %d", v, bt.InDegree(v))
		}
	}
	if bt.InDegree(0) != 0 {
		t.Fatal("tree root has a parent")
	}
}

func TestGNM(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := GNM(10, 30, rng)
	if g.NumEdges() != 30 {
		t.Fatalf("GNM edges = %d, want 30", g.NumEdges())
	}
	for _, e := range g.Edges() {
		if e.From == e.To {
			t.Fatalf("GNM produced self-loop %v", e)
		}
	}
}

func TestPreferentialAttachment(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := PreferentialAttachment(200, 3, rng)
	if g.NumNodes() != 200 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if g.NumEdges() < 3*190 {
		t.Fatalf("edges = %d, expected close to 3 per node", g.NumEdges())
	}
	// Heavy tail: max total degree should comfortably exceed the mean.
	maxDeg, sumDeg := 0, 0
	for v := 0; v < 200; v++ {
		d := g.InDegree(v) + g.OutDegree(v)
		sumDeg += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	meanDeg := float64(sumDeg) / 200
	if float64(maxDeg) < 3*meanDeg {
		t.Fatalf("degree distribution looks uniform: max %d, mean %.1f", maxDeg, meanDeg)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	g := New(2)
	for _, fn := range []func(){
		func() { g.AddEdge(-1, 0) },
		func() { g.AddEdge(0, 2) },
		func() { g.Children(5) },
		func() { g.Parents(-3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic for out-of-range node")
				}
			}()
			fn()
		}()
	}
}

// Property: for any sequence of insertions, in/out adjacency stay mutually
// consistent and NumEdges matches the edge-set size.
func TestAdjacencyConsistencyProperty(t *testing.T) {
	f := func(pairs []uint16) bool {
		const n = 16
		g := New(n)
		for _, p := range pairs {
			g.AddEdge(int(p>>8)%n, int(p&0xff)%n)
		}
		count := 0
		for u := 0; u < n; u++ {
			for _, v := range g.Children(u) {
				count++
				found := false
				for _, p := range g.Parents(v) {
					if p == u {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return count == g.NumEdges() && len(g.Edges()) == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Clone is always Equal, and removal after insertion restores
// non-membership.
func TestInsertRemoveProperty(t *testing.T) {
	f := func(pairs []uint16) bool {
		const n = 12
		g := New(n)
		for _, p := range pairs {
			u, v := int(p>>8)%n, int(p&0xff)%n
			had := g.HasEdge(u, v)
			added := g.AddEdge(u, v)
			if u != v && had == added {
				return false // added must be !had for non-loops
			}
			if !g.Clone().Equal(g) {
				return false
			}
		}
		for _, e := range g.Edges() {
			g.RemoveEdge(e.From, e.To)
			if g.HasEdge(e.From, e.To) {
				return false
			}
		}
		return g.NumEdges() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
