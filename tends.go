// Package tends reconstructs diffusion network topologies from only the
// final infection statuses of nodes, implementing TENDS from "Statistical
// Estimation of Diffusion Network Topologies" (ICDE 2020).
//
// A diffusion network is a directed graph whose edges carry influence: an
// infected node may infect its children. Given β historical diffusion
// processes observed only as final 0/1 infection statuses — no timestamps,
// no sources, no prior knowledge of the edge count — TENDS recovers the
// most probable edge set by finding, for every node, the parent set that
// maximizes a penalized-likelihood local score, over candidates pre-pruned
// by infection mutual information.
//
// # Quick start
//
//	// Observations: one row of 0/1 statuses per diffusion process.
//	obs := tends.NewObservations(beta, n)
//	for p, row := range data {
//	    for v, infected := range row {
//	        obs.Set(p, v, infected)
//	    }
//	}
//	result, err := tends.Infer(obs, tends.Options{})
//	if err != nil { ... }
//	for _, e := range result.Graph.Edges() {
//	    fmt.Printf("%d influences %d\n", e.From, e.To)
//	}
//
// Observations can also come from the bundled independent-cascade simulator
// (see Simulate) or from a status file (see ReadObservations), and the
// cmd/tends, cmd/diffsim, cmd/lfrgen and cmd/benchfig executables wrap the
// same functionality for the command line.
//
// The internal packages additionally provide the baselines the paper
// compares against (NetRate, MulTree, LIFT, and NetInf) and the full
// benchmark harness regenerating the paper's Figures 1–11; see DESIGN.md
// and EXPERIMENTS.md.
package tends

import (
	"io"
	"math/rand"

	"tends/internal/core"
	"tends/internal/diffusion"
	"tends/internal/graph"
	"tends/internal/metrics"
	"tends/internal/probest"
)

// Graph is a directed graph over nodes 0..n-1; an edge (u, v) means u has
// an influence relationship to v.
type Graph = graph.Directed

// Edge is a directed edge of a Graph.
type Edge = graph.Edge

// NewGraph returns an empty directed graph with n nodes.
func NewGraph(n int) *Graph { return graph.New(n) }

// ReadGraph parses a graph from its text serialization ("nodes <n>" header
// followed by "<from> <to>" lines).
func ReadGraph(r io.Reader) (*Graph, error) { return graph.Read(r) }

// WriteGraph serializes a graph in the text format understood by ReadGraph.
func WriteGraph(w io.Writer, g *Graph) error { return graph.Write(w, g) }

// Observations is a β×n matrix of final infection statuses: row ℓ holds the
// statuses of all n nodes at the end of the ℓ-th diffusion process.
type Observations = diffusion.StatusMatrix

// NewObservations returns a zeroed β×n observation matrix.
func NewObservations(beta, n int) *Observations { return diffusion.NewStatusMatrix(beta, n) }

// ReadObservations parses observations from their text serialization
// ("statuses <beta> <n>" header followed by one 0/1 row per process).
func ReadObservations(r io.Reader) (*Observations, error) { return diffusion.ReadStatus(r) }

// Options tunes the TENDS algorithm; the zero value is the recommended
// configuration. See the field documentation in internal/core for the
// trade-offs behind each knob.
type Options = core.Options

// Threshold-selection strategies for Options.ThresholdMethod.
const (
	// ThresholdAuto (default): the larger of the paper's K-means threshold
	// and an FDR-calibrated significance threshold.
	ThresholdAuto = core.ThresholdAuto
	// ThresholdKMeans: the paper's Section IV-B modified K-means, exactly.
	ThresholdKMeans = core.ThresholdKMeans
	// ThresholdKMeansPerNode: the paper's K-means run per node.
	ThresholdKMeansPerNode = core.ThresholdKMeansPerNode
	// ThresholdFDR: pure Benjamini–Hochberg FDR control.
	ThresholdFDR = core.ThresholdFDR
)

// Result is the outcome of an inference run: the reconstructed topology,
// the per-node parent sets, the pruning threshold used, and the value of
// the scoring criterion g(T).
type Result = core.Result

// Infer reconstructs the diffusion network topology behind the
// observations.
func Infer(obs *Observations, opt Options) (*Result, error) {
	return core.Infer(obs, opt)
}

// SimulationConfig controls Simulate.
type SimulationConfig struct {
	// Alpha is the initial infection ratio: each process seeds
	// max(1, round(Alpha·n)) uniformly random nodes.
	Alpha float64
	// Beta is the number of independent diffusion processes.
	Beta int
	// Mu is the mean per-edge propagation probability; probabilities are
	// drawn once per network from a Gaussian with standard deviation 0.05,
	// truncated into (0, 1) — the paper's infection-data protocol.
	Mu float64
	// Seed drives all randomness; equal seeds reproduce runs exactly.
	Seed int64
}

// SimulationResult bundles the observations a simulation produced with the
// full cascade traces (used by timestamp-based baselines in the internal
// packages).
type SimulationResult = diffusion.Result

// Simulate runs independent-cascade diffusion processes on a known network
// and returns the resulting observations, for studying reconstruction
// quality against a ground truth.
func Simulate(g *Graph, cfg SimulationConfig) (*SimulationResult, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	ep := diffusion.NewEdgeProbs(g, cfg.Mu, 0.05, rng)
	return diffusion.Simulate(ep, diffusion.Config{Alpha: cfg.Alpha, Beta: cfg.Beta}, rng)
}

// ProbabilityEstimate carries estimated per-edge propagation probabilities
// and per-node leak (exogenous infection) probabilities.
type ProbabilityEstimate = probest.Estimate

// EstimateProbabilities fits a per-edge propagation probability and a
// per-node leak probability to the observations under a noisy-OR model,
// given a topology (typically Result.Graph from Infer). It completes the
// reconstruction into a fully weighted diffusion network; see
// internal/probest for the model and its caveats.
func EstimateProbabilities(obs *Observations, g *Graph) (*ProbabilityEstimate, error) {
	return probest.Run(obs, g, probest.Options{})
}

// PRF bundles precision, recall and F-score of an inferred topology against
// a ground truth.
type PRF = metrics.PRF

// Score compares an inferred topology against the ground truth, counting a
// true positive only for direction-exact edge matches (the paper's
// evaluation criterion).
func Score(truth, inferred *Graph) PRF {
	return metrics.Score(truth, inferred)
}
