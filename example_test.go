package tends_test

import (
	"fmt"
	"log"

	"tends"
)

// ExampleInfer reconstructs a small known network from simulated final
// infection statuses and reports the reconstruction quality.
func ExampleInfer() {
	// Ground truth: a mutual-influence chain 0 <-> 1 <-> ... <-> 7.
	truth := tends.NewGraph(8)
	for i := 0; i+1 < 8; i++ {
		truth.AddEdge(i, i+1)
		truth.AddEdge(i+1, i)
	}

	sim, err := tends.Simulate(truth, tends.SimulationConfig{
		Alpha: 0.125, Beta: 1500, Mu: 0.4, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Only the final statuses go in — no timestamps, no seeds.
	result, err := tends.Infer(sim.Statuses, tends.Options{})
	if err != nil {
		log.Fatal(err)
	}
	prf := tends.Score(truth, result.Graph)
	fmt.Printf("recovered %d/%d edges, F=%.2f\n", prf.TP, truth.NumEdges(), prf.F)
	// Output: recovered 14/14 edges, F=1.00
}

// ExampleEstimateProbabilities completes a reconstruction into a weighted
// network by fitting per-edge propagation probabilities.
func ExampleEstimateProbabilities() {
	// A directed chain of 20 nodes; each edge transmits with mean
	// probability 0.6.
	truth := tends.NewGraph(20)
	for i := 0; i+1 < 20; i++ {
		truth.AddEdge(i, i+1)
	}
	sim, err := tends.Simulate(truth, tends.SimulationConfig{
		Alpha: 0.2, Beta: 4000, Mu: 0.6, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	est, err := tends.EstimateProbabilities(sim.Statuses, truth)
	if err != nil {
		log.Fatal(err)
	}
	p := est.Probs[tends.Edge{From: 9, To: 10}]
	fmt.Printf("edge 9->10 probability is in (0.4, 0.8): %v\n", p > 0.4 && p < 0.8)
	// Output: edge 9->10 probability is in (0.4, 0.8): true
}

// ExampleNewObservations shows manual observation entry for data that does
// not come from the bundled simulator.
func ExampleNewObservations() {
	// 4 diffusion processes over 3 nodes.
	data := [][]bool{
		{true, true, false},
		{false, false, false},
		{true, true, true},
		{false, true, false},
	}
	obs := tends.NewObservations(len(data), 3)
	for p, row := range data {
		for v, infected := range row {
			obs.Set(p, v, infected)
		}
	}
	fmt.Printf("%d processes, %d nodes, node 1 infected %d times\n",
		obs.Beta(), obs.N(), obs.CountInfected(1))
	// Output: 4 processes, 3 nodes, node 1 infected 3 times
}
