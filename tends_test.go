package tends

import (
	"bytes"
	"testing"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	// Build a small symmetric network through the public API.
	g := NewGraph(10)
	for i := 0; i+1 < 10; i++ {
		g.AddEdge(i, i+1)
		g.AddEdge(i+1, i)
	}
	sim, err := Simulate(g, SimulationConfig{Alpha: 0.1, Beta: 800, Mu: 0.4, Seed: 1})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	res, err := Infer(sim.Statuses, Options{})
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	prf := Score(g, res.Graph)
	if prf.F < 0.6 {
		t.Fatalf("public-API recovery F = %.3f (P=%.3f R=%.3f)", prf.F, prf.Precision, prf.Recall)
	}
}

func TestPublicAPISerialization(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(got) {
		t.Fatal("graph round trip failed")
	}

	obs := NewObservations(3, 4)
	obs.Set(1, 2, true)
	buf.Reset()
	if err := obs.WriteStatus(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadObservations(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Get(1, 2) || back.Get(0, 0) {
		t.Fatal("observation round trip failed")
	}
}

func TestEstimateProbabilities(t *testing.T) {
	g := NewGraph(6)
	for i := 0; i+1 < 6; i++ {
		g.AddEdge(i, i+1)
	}
	sim, err := Simulate(g, SimulationConfig{Alpha: 0.17, Beta: 1200, Mu: 0.6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateProbabilities(sim.Statuses, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(est.Probs) != g.NumEdges() {
		t.Fatalf("probabilities for %d edges, want %d", len(est.Probs), g.NumEdges())
	}
	for e, p := range est.Probs {
		if p < 0.2 || p > 1 {
			t.Fatalf("edge %v probability %.3f implausible for mu=0.6", e, p)
		}
	}
}

func TestPublicThresholdConstants(t *testing.T) {
	g := NewGraph(6)
	for i := 0; i+1 < 6; i++ {
		g.AddEdge(i, i+1)
		g.AddEdge(i+1, i)
	}
	sim, err := Simulate(g, SimulationConfig{Alpha: 0.17, Beta: 300, Mu: 0.4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for name, opt := range map[string]Options{
		"auto":    {ThresholdMethod: ThresholdAuto},
		"kmeans":  {ThresholdMethod: ThresholdKMeans},
		"pernode": {ThresholdMethod: ThresholdKMeansPerNode},
		"fdr":     {ThresholdMethod: ThresholdFDR},
	} {
		if _, err := Infer(sim.Statuses, opt); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}
